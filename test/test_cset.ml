(* Unit and property tests for Repro_util.Cset, the adaptive compressed
   set behind large-n knowledge state. Every operation is checked
   against Bitset (itself model-checked in test_bitset.ml), with
   generators biased to cross the container representation boundaries:
   sorted-array → bitmap promotion at range/32 members, bitmap → run
   collapse at saturation, and multi-container universes. *)

open Repro_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- unit: representation boundaries ---- *)

let test_empty () =
  let t = Cset.create 100 in
  check_int "cardinal" 0 (Cset.cardinal t);
  check_bool "is_empty" true (Cset.is_empty t);
  check_bool "is_full" false (Cset.is_full t);
  check_bool "mem" false (Cset.mem t 0);
  check_int "capacity" 100 (Cset.capacity t)

let test_add_remove_promote () =
  (* range 320 → promotion to bitmap at 10 members; walk across it *)
  let n = 320 in
  let t = Cset.create n in
  let b = Bitset.create n in
  for i = 0 to 29 do
    let v = (i * 37) mod n in
    check_bool "add agrees" (Bitset.add b v) (Cset.add t v);
    check_int "cardinal agrees" (Bitset.cardinal b) (Cset.cardinal t)
  done;
  Bitset.iter (fun v -> check_bool "mem agrees" true (Cset.mem t v)) b;
  check_bool "remove present" true (Cset.remove t 0);
  check_bool "remove absent" false (Cset.remove t 0);
  check_int "cardinal after remove" (Bitset.cardinal b - 1) (Cset.cardinal t)

let test_full_collapse () =
  let n = 70_000 in
  (* two containers *)
  let t = Cset.create n in
  for v = 0 to n - 1 do
    ignore (Cset.add t v)
  done;
  check_bool "is_full" true (Cset.is_full t);
  check_int "cardinal" n (Cset.cardinal t);
  (* saturated containers collapse to O(1) run form *)
  if Cset.memory_words t > 64 then
    Alcotest.failf "full set holds %d payload words (expected O(containers))"
      (Cset.memory_words t);
  (* membership and rank still exact after collapse *)
  check_bool "mem low" true (Cset.mem t 0);
  check_bool "mem high" true (Cset.mem t (n - 1));
  check_int "rank mid" 65_536 (Cset.rank t 65_536);
  check_int "choose_nth" 65_537 (Cset.choose_nth t 65_537);
  (* merging a full set into an empty one is a whole-container copy *)
  let d = Cset.create n in
  check_int "union of full" n (Cset.union_into ~dst:d ~src:t);
  check_bool "dst full" true (Cset.is_full d)

let test_bounds () =
  let t = Cset.create 10 in
  List.iter
    (fun v ->
      Alcotest.check_raises "out of range" (Invalid_argument "Cset: element out of range")
        (fun () -> ignore (Cset.add t v)))
    [ -1; 10; 11 ]

let test_unbounded () =
  let t = Cset.create_unbounded () in
  check_int "empty capacity" 0 (Cset.capacity t);
  check_bool "add far" true (Cset.add t 1_000_000);
  check_bool "add near" true (Cset.add t 3);
  check_bool "duplicate" false (Cset.add t 1_000_000);
  check_bool "mem far" true (Cset.mem t 1_000_000);
  check_bool "mem absent" false (Cset.mem t 999_999);
  check_int "cardinal" 2 (Cset.cardinal t);
  check_int "capacity grows" 1_000_001 (Cset.capacity t)

(* ---- unit: freeze / copy-on-write ---- *)

let test_freeze_immutable () =
  let t = Cset.of_array 100 [| 1; 40; 64 |] in
  let v = Cset.freeze t in
  check_bool "view frozen" true (Cset.is_frozen v);
  check_bool "source not frozen" false (Cset.is_frozen t);
  check_bool "freeze of frozen is itself" true (Cset.freeze v == v);
  Alcotest.check_raises "add on view" (Invalid_argument "Cset: mutation of a frozen view")
    (fun () -> ignore (Cset.add v 2));
  check_bool "source add invisible in view" true (Cset.add t 7);
  check_bool "view does not see add" false (Cset.mem v 7);
  check_bool "source remove invisible in view" true (Cset.remove t 40);
  check_bool "view still sees removed" true (Cset.mem v 40);
  check_int "view cardinal unchanged" 3 (Cset.cardinal v)

let test_freeze_copy_on_write_union () =
  let t = Cset.of_array 100 [| 3 |] in
  let v = Cset.freeze t in
  ignore (Cset.union_into ~dst:t ~src:(Cset.of_array 100 [| 3; 9 |]));
  check_bool "union visible in source" true (Cset.mem t 9);
  check_bool "union invisible in view" false (Cset.mem v 9);
  let c = Cset.copy v in
  check_bool "copy of frozen is mutable" true (Cset.add c 11);
  check_bool "view untouched by copy's write" false (Cset.mem v 11)

(* The array-into-frozen-bitmap fast path in union_gen: when the
   destination container is a sorted array and the source a frozen
   bitmap, the union either aliases the source payload (dst ⊆ src) or
   copies it once and patches the missing members in. Both branches,
   plus the already-owned-destination case where the writable container
   record is the same one being read (a regression: the patch loop must
   capture the array payload before the record is repurposed). *)
let test_arr_into_frozen_bmp () =
  let n = 65_536 in
  let big = Cset.create n in
  for i = 0 to 4095 do
    ignore (Cset.add big (i * 16))
  done;
  let src = Cset.freeze big in
  (* dst ⊆ src: aliases the bitmap, no copy, still correct *)
  let sub = Cset.of_array n [| 0; 160; 65_520 |] in
  check_int "alias union added" (4096 - 3) (Cset.union_into ~dst:sub ~src);
  check_bool "alias mem" true (Cset.mem sub 32);
  check_int "alias cardinal" 4096 (Cset.cardinal sub);
  (* writing after the alias privatises; the frozen source is untouched *)
  check_bool "post-alias add" true (Cset.add sub 1);
  check_bool "source clean" false (Cset.mem src 1);
  (* dst ⊄ src, dst never frozen: the patch loop runs with the writable
     record aliasing the read container *)
  let mixed = Cset.of_array n [| 0; 7; 160; 33_333 |] in
  let before = Cset.cardinal mixed in
  let added = Cset.union_into ~dst:mixed ~src in
  check_int "patch union cardinal" (before + added) (Cset.cardinal mixed);
  check_int "patch union total" (4096 + 2) (Cset.cardinal mixed);
  check_bool "patched member 7" true (Cset.mem mixed 7);
  check_bool "patched member 33333" true (Cset.mem mixed 33_333);
  check_bool "bitmap member" true (Cset.mem mixed 65_520);
  check_bool "source clean of 7" false (Cset.mem src 7)

(* ---- properties against Bitset ---- *)

(* universes that exercise single small containers, the promotion
   threshold, and multi-container layouts (container span 65,536) *)
let universe_gen =
  QCheck2.Gen.(oneof [ int_range 1 400; int_range 60_000 70_000; return 140_000 ])

let imin (a : int) b = if a < b then a else b

let values_gen n =
  QCheck2.Gen.(
    let dense = list_size (int_range 0 200) (int_range 0 (imin 399 (n - 1))) in
    let spread = list_size (int_range 0 200) (int_range 0 (n - 1)) in
    if n <= 400 then dense else oneof [ dense; spread ])

let pair_gen =
  QCheck2.Gen.(
    let* n = universe_gen in
    let* xs = values_gen n in
    let* ys = values_gen n in
    return (n, xs, ys))

let of_list n vs =
  let c = Cset.create n and b = Bitset.create n in
  List.iter
    (fun v ->
      ignore (Cset.add c v);
      ignore (Bitset.add b v))
    vs;
  (c, b)

let agrees c b =
  Cset.cardinal c = Bitset.cardinal b
  && Cset.elements c = Bitset.elements b
  &&
  let ok = ref true in
  Bitset.iter (fun v -> if not (Cset.mem c v) then ok := false) b;
  !ok

let prop_matches_model =
  QCheck2.Test.make ~name:"cset matches bitset under add/remove" ~count:200
    QCheck2.Gen.(
      let* n = universe_gen in
      let* xs = values_gen n in
      let* rm = values_gen n in
      return (n, xs, rm))
    (fun (n, xs, rm) ->
      let c, b = of_list n xs in
      List.iter
        (fun v ->
          let cr = Cset.remove c v and br = Bitset.remove b v in
          if cr <> br then Alcotest.failf "remove %d disagrees" v)
        rm;
      agrees c b)

let prop_union_matches =
  QCheck2.Test.make ~name:"union_into matches bitset" ~count:200 pair_gen
    (fun (n, xs, ys) ->
      let c, b = of_list n xs in
      let sc, sb = of_list n ys in
      let ca = Cset.union_into ~dst:c ~src:sc in
      let ba = Bitset.union_into ~dst:b ~src:sb in
      ca = ba && agrees c b && Cset.subset sc c)

let prop_union_frozen_matches =
  QCheck2.Test.make ~name:"union_into from a frozen source matches bitset" ~count:200 pair_gen
    (fun (n, xs, ys) ->
      let c, b = of_list n xs in
      let sc, sb = of_list n ys in
      let frozen = Cset.freeze sc in
      let ca = Cset.union_into ~dst:c ~src:frozen in
      let ba = Bitset.union_into ~dst:b ~src:sb in
      (* destination correct, and neither view of the source moved *)
      ca = ba && agrees c b && agrees frozen sb && agrees sc sb
      &&
      (* writes to the destination never leak into the source *)
      let probe = (Cset.capacity c - 1) mod n in
      let fresh = not (Cset.mem c probe) in
      ignore (Cset.add c probe);
      (not fresh) || not (Cset.mem frozen probe))

let prop_union_with_enumerates_fresh =
  QCheck2.Test.make ~name:"union_into_with yields fresh elements in order" ~count:200 pair_gen
    (fun (n, xs, ys) ->
      let c, b = of_list n xs in
      let sc, _ = of_list n ys in
      let seen = ref [] in
      let added = Cset.union_into_with ~dst:c ~src:sc (fun v -> seen := v :: !seen) in
      let fresh = List.rev !seen in
      added = List.length fresh
      && List.for_all (fun v -> not (Bitset.mem b v)) fresh
      && fresh = List.sort compare fresh
      && Cset.cardinal c = Bitset.cardinal b + added)

let prop_queries_match =
  QCheck2.Test.make ~name:"rank/choose_nth/min_elt/inter match bitset" ~count:200 pair_gen
    (fun (n, xs, ys) ->
      let c, b = of_list n xs in
      let sc, sb = of_list n ys in
      Cset.inter_cardinal c sc = Bitset.inter_cardinal b sb
      && Cset.equal c sc = Bitset.equal b sb
      && (Bitset.is_empty b || Cset.min_elt c = Bitset.choose_nth b 0)
      && (let elems = Bitset.elements b in
          List.for_all
            (fun v -> Cset.rank c v = List.length (List.filter (fun x -> x < v) elems))
            (List.filteri (fun i _ -> i < 16) (List.map (fun v -> v mod n) ys)))
      &&
      let elems = Bitset.to_array b in
      Array.for_all (fun x -> x)
        (Array.mapi (fun i v -> Cset.choose_nth c i = v) elems))

let () =
  Alcotest.run "cset"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "add/remove across promotion" `Quick test_add_remove_promote;
          Alcotest.test_case "saturation collapses to runs" `Quick test_full_collapse;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "unbounded universe" `Quick test_unbounded;
          Alcotest.test_case "freeze is immutable" `Quick test_freeze_immutable;
          Alcotest.test_case "freeze copy-on-write union" `Quick test_freeze_copy_on_write_union;
          Alcotest.test_case "array into frozen bitmap" `Quick test_arr_into_frozen_bmp;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_matches_model;
            prop_union_matches;
            prop_union_frozen_matches;
            prop_union_with_enumerates_fresh;
            prop_queries_match;
          ] );
    ]
