open Repro_util

let test_basic () =
  let v = Intvec.create () in
  Alcotest.(check bool) "empty" true (Intvec.is_empty v);
  Intvec.push v 10;
  Intvec.push v 20;
  Intvec.push v 30;
  Alcotest.(check int) "length" 3 (Intvec.length v);
  Alcotest.(check int) "get 1" 20 (Intvec.get v 1);
  Alcotest.(check int) "last" 30 (Intvec.last v);
  Intvec.set v 1 99;
  Alcotest.(check int) "set" 99 (Intvec.get v 1);
  Alcotest.(check int) "pop" 30 (Intvec.pop v);
  Alcotest.(check int) "length after pop" 2 (Intvec.length v);
  Intvec.clear v;
  Alcotest.(check bool) "cleared" true (Intvec.is_empty v)

let test_growth () =
  let v = Intvec.create ~capacity:1 () in
  for i = 0 to 999 do
    Intvec.push v i
  done;
  Alcotest.(check int) "length" 1000 (Intvec.length v);
  Alcotest.(check (array int)) "contents" (Array.init 1000 (fun i -> i)) (Intvec.to_array v)

let test_bounds () =
  let v = Intvec.of_array [| 1; 2 |] in
  Alcotest.check_raises "get oob" (Invalid_argument "Intvec: index out of bounds") (fun () ->
      ignore (Intvec.get v 2));
  Alcotest.check_raises "set oob" (Invalid_argument "Intvec: index out of bounds") (fun () ->
      Intvec.set v (-1) 0);
  Alcotest.check_raises "pop empty" (Invalid_argument "Intvec.pop: empty") (fun () ->
      let e = Intvec.create () in
      ignore (Intvec.pop e));
  Alcotest.check_raises "sub oob" (Invalid_argument "Intvec.sub: invalid slice") (fun () ->
      ignore (Intvec.sub v ~pos:1 ~len:2))

let test_sub () =
  let v = Intvec.of_array [| 5; 6; 7; 8; 9 |] in
  Alcotest.(check (array int)) "middle slice" [| 6; 7; 8 |] (Intvec.sub v ~pos:1 ~len:3);
  Alcotest.(check (array int)) "empty slice" [||] (Intvec.sub v ~pos:5 ~len:0)

let test_iter_fold () =
  let v = Intvec.of_array [| 1; 2; 3 |] in
  Alcotest.(check int) "fold sum" 6 (Intvec.fold ( + ) 0 v);
  let idx_sum = ref 0 in
  Intvec.iteri (fun i x -> idx_sum := !idx_sum + (i * x)) v;
  Alcotest.(check int) "iteri" 8 !idx_sum

let test_of_array_copies () =
  let a = [| 1; 2; 3 |] in
  let v = Intvec.of_array a in
  a.(0) <- 99;
  Alcotest.(check int) "of_array copies" 1 (Intvec.get v 0)

let test_slice () =
  let v = Intvec.of_array [| 5; 6; 7; 8; 9 |] in
  let s = Intvec.slice v ~pos:1 ~len:3 in
  Alcotest.(check int) "length" 3 (Intvec.slice_length s);
  Alcotest.(check int) "get 0" 6 (Intvec.slice_get s 0);
  Alcotest.(check int) "get 2" 8 (Intvec.slice_get s 2);
  Alcotest.(check (array int)) "to_array" [| 6; 7; 8 |] (Intvec.slice_to_array s);
  Alcotest.(check int) "fold" 21 (Intvec.slice_fold ( + ) 0 s);
  let seen = ref [] in
  Intvec.slice_iter (fun x -> seen := x :: !seen) s;
  Alcotest.(check (list int)) "iter order" [ 6; 7; 8 ] (List.rev !seen);
  let empty = Intvec.slice v ~pos:5 ~len:0 in
  Alcotest.(check int) "empty slice" 0 (Intvec.slice_length empty);
  Alcotest.(check (array int)) "empty to_array" [||] (Intvec.slice_to_array empty)

let test_slice_bounds () =
  let v = Intvec.of_array [| 1; 2; 3 |] in
  let bad pos len =
    Alcotest.check_raises "slice oob" (Invalid_argument "Intvec.slice: invalid slice")
      (fun () -> ignore (Intvec.slice v ~pos ~len))
  in
  bad (-1) 1;
  bad 0 4;
  bad 2 2;
  bad 0 (-1);
  let s = Intvec.slice v ~pos:1 ~len:2 in
  Alcotest.check_raises "get below" (Invalid_argument "Intvec.slice_get: index out of bounds")
    (fun () -> ignore (Intvec.slice_get s (-1)));
  Alcotest.check_raises "get above" (Invalid_argument "Intvec.slice_get: index out of bounds")
    (fun () -> ignore (Intvec.slice_get s 2))

let test_slice_survives_growth () =
  (* the documented contract: a slice of an append-only vector stays
     valid even when later pushes force the vector to reallocate *)
  let v = Intvec.create ~capacity:2 () in
  Intvec.push v 10;
  Intvec.push v 11;
  let s = Intvec.slice v ~pos:0 ~len:2 in
  for i = 0 to 99 do
    Intvec.push v i
  done;
  Alcotest.(check (array int)) "slice unchanged after growth" [| 10; 11 |]
    (Intvec.slice_to_array s)

let prop_push_pop_roundtrip =
  QCheck2.Test.make ~name:"pushes then pops return reversed input" ~count:200
    QCheck2.Gen.(list_size (int_range 0 100) int)
    (fun xs ->
      let v = Intvec.create () in
      List.iter (Intvec.push v) xs;
      let popped = List.init (List.length xs) (fun _ -> Intvec.pop v) in
      popped = List.rev xs && Intvec.is_empty v)

let () =
  Alcotest.run "intvec"
    [
      ( "unit",
        [
          Alcotest.test_case "basic" `Quick test_basic;
          Alcotest.test_case "growth" `Quick test_growth;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "sub" `Quick test_sub;
          Alcotest.test_case "iter/fold" `Quick test_iter_fold;
          Alcotest.test_case "of_array copies" `Quick test_of_array_copies;
          Alcotest.test_case "slice" `Quick test_slice;
          Alcotest.test_case "slice bounds" `Quick test_slice_bounds;
          Alcotest.test_case "slice survives growth" `Quick test_slice_survives_growth;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_push_pop_roundtrip ]);
    ]
