open Repro_engine

let drain box =
  let out = ref [] in
  Outbox.iter box (fun src dst msg -> out := (src, dst, msg) :: !out);
  List.rev !out

let test_basic () =
  let box = Outbox.create () in
  Alcotest.(check bool) "empty" true (Outbox.is_empty box);
  Outbox.push box ~src:0 ~dst:1 "a";
  Outbox.push box ~src:2 ~dst:0 "b";
  Outbox.push box ~src:1 ~dst:2 "c";
  Alcotest.(check int) "length" 3 (Outbox.length box);
  Alcotest.(check (list (triple int int string)))
    "push order preserved"
    [ (0, 1, "a"); (2, 0, "b"); (1, 2, "c") ]
    (drain box)

let test_reuse_across_rounds () =
  (* the engine contract: clear resets the length but keeps the storage,
     so steady-state rounds never grow the buffer *)
  let box = Outbox.create () in
  for round = 1 to 5 do
    Outbox.clear box;
    for i = 0 to 99 do
      Outbox.push box ~src:i ~dst:(i + 1) (round * 1000 + i)
    done;
    Alcotest.(check int) "round length" 100 (Outbox.length box)
  done;
  let cap_after_warmup = Outbox.capacity box in
  for round = 6 to 20 do
    Outbox.clear box;
    for i = 0 to 99 do
      Outbox.push box ~src:i ~dst:(i + 1) (round * 1000 + i)
    done
  done;
  Alcotest.(check int) "capacity stable across rounds" cap_after_warmup (Outbox.capacity box);
  Alcotest.(check (list (triple int int int)))
    "contents are the last round only"
    (List.init 100 (fun i -> (i, i + 1, 20_000 + i)))
    (drain box)

let test_growth () =
  let box = Outbox.create () in
  Alcotest.(check int) "initial capacity" 0 (Outbox.capacity box);
  for i = 0 to 999 do
    Outbox.push box ~src:i ~dst:0 i
  done;
  Alcotest.(check int) "length" 1000 (Outbox.length box);
  Alcotest.(check (list (triple int int int)))
    "order across growth"
    (List.init 1000 (fun i -> (i, 0, i)))
    (drain box)

let test_clear_empty () =
  let box = Outbox.create () in
  Outbox.clear box;
  Alcotest.(check bool) "still empty" true (Outbox.is_empty box);
  Outbox.push box ~src:3 ~dst:4 'x';
  Outbox.clear box;
  Alcotest.(check int) "cleared" 0 (Outbox.length box);
  Alcotest.(check (list (triple int int char))) "iterates nothing" [] (drain box)

let () =
  Alcotest.run "outbox"
    [
      ( "unit",
        [
          Alcotest.test_case "basic" `Quick test_basic;
          Alcotest.test_case "reuse across rounds" `Quick test_reuse_across_rounds;
          Alcotest.test_case "growth" `Quick test_growth;
          Alcotest.test_case "clear" `Quick test_clear_empty;
        ] );
    ]
