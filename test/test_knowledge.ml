open Repro_util
open Repro_discovery

let mk ?(n = 10) ?(owner = 0) ?labels () =
  let labels = match labels with Some l -> l | None -> Array.init n (fun i -> i) in
  Knowledge.create ~n ~owner ~labels ()

let test_initial () =
  let k = mk ~owner:3 () in
  Alcotest.(check int) "owner" 3 (Knowledge.owner k);
  Alcotest.(check int) "universe" 10 (Knowledge.universe k);
  Alcotest.(check int) "cardinal" 1 (Knowledge.cardinal k);
  Alcotest.(check bool) "knows self" true (Knowledge.knows k 3);
  Alcotest.(check bool) "complete?" false (Knowledge.is_complete k);
  Alcotest.(check int) "min is self" 3 (Knowledge.min_known k);
  Alcotest.(check int) "raw min is self" 3 (Knowledge.min_known_raw k)

let test_validation () =
  Alcotest.check_raises "owner range" (Invalid_argument "Knowledge.create: owner out of range")
    (fun () -> ignore (Knowledge.create ~n:3 ~owner:3 ~labels:[| 0; 1; 2 |] ()));
  Alcotest.check_raises "labels length"
    (Invalid_argument "Knowledge.create: labels length mismatch") (fun () ->
      ignore (Knowledge.create ~n:3 ~owner:0 ~labels:[| 0; 1 |] ()))

let test_add_and_merge () =
  let k = mk () in
  Alcotest.(check bool) "new" true (Knowledge.add k 5);
  Alcotest.(check bool) "dup" false (Knowledge.add k 5);
  Alcotest.(check int) "merge_ids" 2 (Knowledge.merge_ids k [| 5; 6; 7 |]);
  let bits = Cset.of_array 10 [| 6; 8; 9 |] in
  Alcotest.(check int) "merge_bits" 2 (Knowledge.merge_bits k bits);
  Alcotest.(check int) "cardinal" 6 (Knowledge.cardinal k);
  Alcotest.(check (array int)) "learn order" [| 0; 5; 6; 7; 8; 9 |]
    (Knowledge.elements_in_learn_order k)

let test_completion () =
  let k = mk ~n:3 () in
  ignore (Knowledge.merge_ids k [| 1; 2 |]);
  Alcotest.(check bool) "complete" true (Knowledge.is_complete k)

let test_min_tracking () =
  (* labels reverse the raw order: node 9 has label 0 *)
  let labels = Array.init 10 (fun i -> 9 - i) in
  let k = mk ~owner:5 ~labels () in
  Alcotest.(check int) "min initially self" 5 (Knowledge.min_known k);
  ignore (Knowledge.add k 3);
  (* label of 3 is 6 > label of 5 which is 4: min unchanged *)
  Alcotest.(check int) "min unchanged" 5 (Knowledge.min_known k);
  ignore (Knowledge.add k 8);
  (* label of 8 is 1 < 4 *)
  Alcotest.(check int) "min by label" 8 (Knowledge.min_known k);
  Alcotest.(check int) "min by raw id" 3 (Knowledge.min_known_raw k)

let test_min_excluding () =
  let labels = Array.init 10 (fun i -> 9 - i) in
  let k = mk ~owner:5 ~labels () in
  ignore (Knowledge.merge_ids k [| 8; 9; 3 |]);
  Alcotest.(check int) "unsuspected min" 9 (Knowledge.min_known k);
  let suspects = Cset.of_array 10 [| 9 |] in
  Alcotest.(check int) "skip suspect" 8 (Knowledge.min_known_excluding k ~suspects);
  let all = Cset.of_array 10 [| 9; 8; 3 |] in
  Alcotest.(check int) "fall back to owner" 5 (Knowledge.min_known_excluding k ~suspects:all);
  Alcotest.check_raises "capacity" (Invalid_argument "Knowledge.min_known_excluding: capacity mismatch")
    (fun () -> ignore (Knowledge.min_known_excluding k ~suspects:(Cset.create 3)))

(* Pins the chosen behaviour when the owner itself is suspected: any
   unsuspected known node wins — even one with a larger label than the
   owner's — and the owner is returned only when every known node
   (owner included) is suspected. *)
let test_min_excluding_suspected_owner () =
  let labels = Array.init 10 (fun i -> i) in
  let k = mk ~owner:2 ~labels () in
  ignore (Knowledge.merge_ids k [| 7; 4 |]);
  Alcotest.(check int) "owner wins unsuspected" 2
    (Knowledge.min_known_excluding k ~suspects:(Cset.create 10));
  let owner_suspected = Cset.of_array 10 [| 2 |] in
  Alcotest.(check int) "suspected owner loses to larger label" 4
    (Knowledge.min_known_excluding k ~suspects:owner_suspected);
  let owner_and_4 = Cset.of_array 10 [| 2; 4 |] in
  Alcotest.(check int) "next unsuspected candidate" 7
    (Knowledge.min_known_excluding k ~suspects:owner_and_4);
  let everyone = Cset.of_array 10 [| 2; 4; 7 |] in
  Alcotest.(check int) "owner as last resort" 2
    (Knowledge.min_known_excluding k ~suspects:everyone)

let test_marks_and_since () =
  let k = mk () in
  let m0 = Knowledge.mark k in
  ignore (Knowledge.merge_ids k [| 4; 2 |]);
  (* batches enter the learn order ascending, whatever the array order *)
  Alcotest.(check (array int)) "delta" [| 2; 4 |] (Knowledge.since k ~mark:m0);
  let m1 = Knowledge.mark k in
  Alcotest.(check (array int)) "empty delta" [||] (Knowledge.since k ~mark:m1);
  ignore (Knowledge.add k 7);
  Alcotest.(check (array int)) "next delta" [| 7 |] (Knowledge.since k ~mark:m1);
  Alcotest.(check (array int)) "from zero includes owner" [| 0; 2; 4; 7 |]
    (Knowledge.since k ~mark:0);
  Alcotest.check_raises "stale mark" (Invalid_argument "Knowledge.since: invalid mark")
    (fun () -> ignore (Knowledge.since k ~mark:99))

let test_snapshot_independent () =
  let k = mk () in
  let snap = Knowledge.snapshot k in
  ignore (Knowledge.add k 4);
  Alcotest.(check int) "snapshot frozen" 1 (Cset.cardinal snap.Knowledge.set);
  Alcotest.(check int) "snapshot minima" 0 snap.Knowledge.sbest;
  Alcotest.(check int) "live contents" 2 (Cset.cardinal (Knowledge.contents k));
  let snap2 = Knowledge.snapshot k in
  Alcotest.(check bool) "cache keyed by version" true (snap != snap2);
  Alcotest.(check bool) "stable version shares the snapshot" true
    (snap2 == Knowledge.snapshot k)

let test_random_known () =
  let rng = Rng.create ~seed:1 in
  let k = mk () in
  Alcotest.(check (option int)) "nobody else" None (Knowledge.random_known k rng);
  ignore (Knowledge.merge_ids k [| 4; 7 |]);
  for _ = 1 to 50 do
    match Knowledge.random_known k rng with
    | Some v when v = 4 || v = 7 -> ()
    | Some v -> Alcotest.failf "random_known returned %d" v
    | None -> Alcotest.fail "random_known returned None"
  done

let test_random_known_among () =
  let rng = Rng.create ~seed:2 in
  let k = mk () in
  ignore (Knowledge.merge_ids k [| 1; 2; 3 |]);
  Alcotest.(check int) "clipped to available" 3
    (Array.length (Knowledge.random_known_among k rng ~k:10));
  let pick = Knowledge.random_known_among k rng ~k:2 in
  Alcotest.(check int) "requested count" 2 (Array.length pick);
  Alcotest.(check bool) "distinct" true (pick.(0) <> pick.(1));
  Array.iter
    (fun v -> if v = 0 then Alcotest.fail "owner returned by random_known_among")
    pick;
  Alcotest.(check int) "k=0" 0 (Array.length (Knowledge.random_known_among k rng ~k:0))

let test_random_known_among_exhaustive () =
  (* k = cardinal - 1 — the regime where rejection sampling degraded to
     unbounded retries. Fisher–Yates must return all non-owner nodes,
     each exactly once, with exactly k RNG draws. *)
  let k = mk ~n:20 ~owner:0 () in
  ignore (Knowledge.merge_ids k (Array.init 19 (fun i -> i + 1)));
  let rng = Rng.create ~seed:7 in
  let pick = Knowledge.random_known_among k rng ~k:19 in
  Alcotest.(check int) "all non-owner nodes" 19 (Array.length pick);
  Alcotest.(check (list int)) "a permutation of 1..19"
    (List.init 19 (fun i -> i + 1))
    (List.sort Int.compare (Array.to_list pick));
  (* Draw-count pin: a fresh RNG advanced by exactly k bounded draws of
     the same widths must agree with an independent same-seed sample. *)
  let rng_a = Rng.create ~seed:11 and rng_b = Rng.create ~seed:11 in
  let sample = Knowledge.random_known_among k rng_a ~k:5 in
  for i = 0 to 4 do
    ignore (Rng.int rng_b (19 - i))
  done;
  let next_a = Rng.int rng_a 1000 and next_b = Rng.int rng_b 1000 in
  Alcotest.(check int) "exactly k draws consumed" next_b next_a;
  Alcotest.(check int) "sample size" 5 (Array.length sample);
  (* The rank scratch is restored between calls: two same-seed samples
     from the same knowledge set are identical. *)
  let s1 = Knowledge.random_known_among k (Rng.create ~seed:3) ~k:8 in
  let s2 = Knowledge.random_known_among k (Rng.create ~seed:3) ~k:8 in
  Alcotest.(check (array int)) "deterministic given seed" s1 s2

let test_slices_and_iteration () =
  let k = mk () in
  let m0 = Knowledge.mark k in
  ignore (Knowledge.merge_ids k [| 4; 2; 9 |]);
  let s = Knowledge.since_slice k ~mark:m0 in
  Alcotest.(check (array int)) "slice delta" [| 2; 4; 9 |] (Intvec.slice_to_array s);
  ignore (Knowledge.add k 6);
  Alcotest.(check (array int)) "slice is a fixed window" [| 2; 4; 9 |]
    (Intvec.slice_to_array s);
  Alcotest.check_raises "stale mark" (Invalid_argument "Knowledge.since_slice: invalid mark")
    (fun () -> ignore (Knowledge.since_slice k ~mark:99));
  let other = mk ~owner:1 () in
  Alcotest.(check int) "merge_slice learns" 3 (Knowledge.merge_slice other s);
  Alcotest.(check int) "merge_slice dedups" 0 (Knowledge.merge_slice other s);
  Alcotest.(check (array int)) "merged ascending after owner" [| 1; 2; 4; 9 |]
    (Knowledge.elements_in_learn_order other);
  let seen = ref [] in
  Knowledge.iter_known k (fun v -> seen := v :: !seen);
  Alcotest.(check (list int)) "iter_known follows learn order" [ 0; 2; 4; 9; 6 ]
    (List.rev !seen);
  (* canonicalisation: an unsorted batch and its sorted permutation
     produce identical learn orders *)
  let a = mk ~owner:0 () and b = mk ~owner:0 () in
  ignore (Knowledge.merge_ids a [| 7; 3; 5; 3 |]);
  ignore (Knowledge.merge_ids b [| 3; 3; 5; 7 |]);
  Alcotest.(check (array int)) "batch order is canonical"
    (Knowledge.elements_in_learn_order a)
    (Knowledge.elements_in_learn_order b)

let prop_learn_order_matches_set =
  QCheck2.Test.make ~name:"learn order is a duplicate-free enumeration of the set" ~count:200
    QCheck2.Gen.(
      let* n = int_range 1 50 in
      let* owner = int_range 0 (n - 1) in
      let* adds = list_size (int_range 0 100) (int_range 0 (n - 1)) in
      return (n, owner, adds))
    (fun (n, owner, adds) ->
      let k = Knowledge.create ~n ~owner ~labels:(Array.init n (fun i -> i)) () in
      List.iter (fun v -> ignore (Knowledge.add k v)) adds;
      let order = Array.to_list (Knowledge.elements_in_learn_order k) in
      let expected = List.sort_uniq compare (owner :: adds) in
      List.sort compare order = expected
      && List.length order = Knowledge.cardinal k
      && List.for_all (Knowledge.knows k) order)

let prop_min_tracking_correct =
  QCheck2.Test.make ~name:"tracked minima match recomputation" ~count:200
    QCheck2.Gen.(
      let* n = int_range 1 40 in
      let* owner = int_range 0 (n - 1) in
      let* seed = int_range 0 1000 in
      let* adds = list_size (int_range 0 60) (int_range 0 (n - 1)) in
      return (n, owner, seed, adds))
    (fun (n, owner, seed, adds) ->
      let labels = Rng.permutation (Rng.create ~seed) n in
      let k = Knowledge.create ~n ~owner ~labels () in
      List.iter (fun v -> ignore (Knowledge.add k v)) adds;
      let known = Array.to_list (Knowledge.elements_in_learn_order k) in
      let by_label = List.fold_left (fun acc v -> if labels.(v) < labels.(acc) then v else acc) owner known in
      let by_raw = List.fold_left min owner known in
      Knowledge.min_known k = by_label && Knowledge.min_known_raw k = by_raw)

let () =
  Alcotest.run "knowledge"
    [
      ( "unit",
        [
          Alcotest.test_case "initial" `Quick test_initial;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "add/merge" `Quick test_add_and_merge;
          Alcotest.test_case "completion" `Quick test_completion;
          Alcotest.test_case "min tracking" `Quick test_min_tracking;
          Alcotest.test_case "min excluding suspects" `Quick test_min_excluding;
          Alcotest.test_case "min excluding suspected owner" `Quick
            test_min_excluding_suspected_owner;
          Alcotest.test_case "marks and deltas" `Quick test_marks_and_since;
          Alcotest.test_case "snapshot independence" `Quick test_snapshot_independent;
          Alcotest.test_case "random known" `Quick test_random_known;
          Alcotest.test_case "random known among" `Quick test_random_known_among;
          Alcotest.test_case "random known among exhaustive" `Quick
            test_random_known_among_exhaustive;
          Alcotest.test_case "slices and iteration" `Quick test_slices_and_iteration;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_learn_order_matches_set; prop_min_tracking_correct ] );
    ]
