(* Bounded exhaustive exploration of Node_core: enumerate every
   deliver/reorder/timeout/crash interleaving at small n and assert the
   go-back-N window invariants plus drain-then-converge on each. *)

open Repro_net

let explore_ok name cfg =
  match Model.explore cfg with
  | Ok stats -> stats
  | Error msg -> Alcotest.failf "%s: invariant violation: %s" name msg

(* Each config must be exhaustive (untruncated) at its depth, so the
   suite really is a complete enumeration and not a lucky sample. *)
let check_exhaustive name cfg ~at_least =
  let stats = explore_ok name cfg in
  Alcotest.(check bool) (name ^ " untruncated") false stats.Model.truncated;
  Alcotest.(check bool)
    (Printf.sprintf "%s interleavings >= %d (got %d)" name at_least stats.Model.interleavings)
    true
    (stats.Model.interleavings >= at_least)

let test_pair_deep () =
  check_exhaustive "n2-depth8" { Model.default with n = 2; depth = 8; max_leaves = 60_000 }
    ~at_least:5_000

let test_triple_medium () =
  check_exhaustive "n3-depth6" { Model.default with n = 3; depth = 6; max_leaves = 60_000 }
    ~at_least:10_000

let test_quad_shallow () =
  check_exhaustive "n4-depth5" { Model.default with n = 4; depth = 5; max_leaves = 60_000 }
    ~at_least:5_000

let test_crash_restart () =
  check_exhaustive "n3-crash-depth5"
    { Model.default with n = 3; depth = 5; max_crashes = 1; max_leaves = 60_000 }
    ~at_least:5_000

(* The acceptance bar for the whole harness: summed over the configs the
   suite enumerates well over ten thousand complete interleavings. *)
let test_total_interleavings () =
  let total =
    List.fold_left
      (fun acc cfg -> acc + (explore_ok "total" cfg).Model.interleavings)
      0
      [
        { Model.default with n = 2; depth = 8; max_leaves = 60_000 };
        { Model.default with n = 3; depth = 6; max_leaves = 60_000 };
        { Model.default with n = 4; depth = 5; max_leaves = 60_000 };
        { Model.default with n = 3; depth = 5; max_crashes = 1; max_leaves = 60_000 };
      ]
  in
  Alcotest.(check bool)
    (Printf.sprintf "total interleavings %d >= 10000" total)
    true (total >= 10_000)

let test_budget_truncates () =
  let stats = explore_ok "budget" { Model.default with n = 2; depth = 9; max_leaves = 500 } in
  Alcotest.(check bool) "truncated" true stats.Model.truncated;
  Alcotest.(check int) "leaf budget respected" 500 stats.Model.interleavings

let test_wider_reorder () =
  (* a deeper reorder window explores strictly more schedules and must
     still hold every invariant *)
  let narrow =
    explore_ok "narrow" { Model.default with n = 2; depth = 7; reorder_width = 1; max_leaves = 60_000 }
  in
  let wide =
    explore_ok "wide" { Model.default with n = 2; depth = 7; reorder_width = 3; max_leaves = 60_000 }
  in
  Alcotest.(check bool) "wide explores at least as many" true
    (wide.Model.interleavings >= narrow.Model.interleavings)

let test_rejects_bad_config () =
  (try
     ignore (Model.explore { Model.default with n = 1 });
     Alcotest.fail "n=1 accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Model.explore { Model.default with depth = 0 });
    Alcotest.fail "depth=0 accepted"
  with Invalid_argument _ -> ()

let () =
  Alcotest.run "model"
    [
      ( "explore",
        [
          Alcotest.test_case "pair-deep" `Quick test_pair_deep;
          Alcotest.test_case "triple-medium" `Quick test_triple_medium;
          Alcotest.test_case "quad-shallow" `Quick test_quad_shallow;
          Alcotest.test_case "crash-restart" `Quick test_crash_restart;
          Alcotest.test_case "total-10k" `Quick test_total_interleavings;
          Alcotest.test_case "budget-truncates" `Quick test_budget_truncates;
          Alcotest.test_case "wider-reorder" `Quick test_wider_reorder;
          Alcotest.test_case "rejects-bad-config" `Quick test_rejects_bad_config;
        ] );
    ]
