(* Tests for the wire codecs: round-trips, size accounting, framing
   validation, and the adaptive choice. *)

open Repro_util
open Repro_discovery

let universe = 300

let bsnap n ids = Knowledge.external_snapshot (Cset.of_array n ids)

let payload_testable =
  Alcotest.testable
    (fun ppf p -> Format.fprintf ppf "%a" Payload.pp p)
    (fun a b -> Wire.ids_of_payload a = Wire.ids_of_payload b && Payload.(measure Probe) >= 0)

let roundtrip encoding p =
  match Wire.decode encoding ~universe (Wire.encode encoding ~universe p) with
  | Ok p -> p
  | Error msg -> Alcotest.failf "%s: valid encoding rejected: %s" (Wire.encoding_name encoding) msg

let test_probe_roundtrip () =
  List.iter
    (fun e ->
      match roundtrip e Payload.Probe with
      | Payload.Probe -> ()
      | other ->
        Alcotest.failf "%s probe decoded as %s" (Wire.encoding_name e)
          (Format.asprintf "%a" Payload.pp other))
    Wire.all_encodings

let test_halt_roundtrip () =
  List.iter
    (fun e ->
      Alcotest.(check int) "halt is one byte" 1 (Wire.encoded_size e ~universe Payload.Halt);
      match roundtrip e Payload.Halt with
      | Payload.Halt -> ()
      | other ->
        Alcotest.failf "%s halt decoded as %s" (Wire.encoding_name e)
          (Format.asprintf "%a" Payload.pp other))
    Wire.all_encodings

let test_kind_preserved () =
  let data = Payload.Ids [| 3; 7; 200 |] in
  List.iter
    (fun (p, expect) ->
      match (roundtrip Wire.Adaptive p, expect) with
      | Payload.Share _, `Share | Payload.Exchange _, `Exchange | Payload.Reply _, `Reply -> ()
      | got, _ ->
        Alcotest.failf "kind lost: got %s" (Format.asprintf "%a" Payload.pp got))
    [ (Payload.Share data, `Share); (Payload.Exchange data, `Exchange); (Payload.Reply data, `Reply) ]

let test_ids_roundtrip_all () =
  let sets = [ [||]; [| 0 |]; [| universe - 1 |]; [| 5; 5; 5 |]; [| 9; 1; 250; 42 |] ] in
  List.iter
    (fun e ->
      List.iter
        (fun ids ->
          let p = Payload.Share (Payload.Ids ids) in
          let back = roundtrip e p in
          Alcotest.(check (list int))
            (Printf.sprintf "%s roundtrip" (Wire.encoding_name e))
            (List.sort_uniq compare (Array.to_list ids))
            (Wire.ids_of_payload back))
        sets)
    Wire.all_encodings

let test_bits_roundtrip () =
  let bits = bsnap universe [| 0; 1; 63; 64; 299 |] in
  List.iter
    (fun e ->
      let back = roundtrip e (Payload.Reply (Payload.Bits bits)) in
      Alcotest.(check (list int))
        (Wire.encoding_name e)
        [ 0; 1; 63; 64; 299 ]
        (Wire.ids_of_payload back))
    Wire.all_encodings

let test_form_preserved () =
  (* the snapshot-vs-list distinction carries protocol meaning (custody
     marking); it must survive every codec in both directions *)
  let is_bits = function
    | Payload.Share d | Payload.Exchange d | Payload.Reply d -> (
      match d with
      | Payload.Bits _ -> true
      | Payload.Ids _ | Payload.Delta _ | Payload.Updates _ -> false)
    | Payload.Probe | Payload.Halt | Payload.Probe_req _ | Payload.Probe_ack _
    | Payload.Suspicion _ ->
      false
  in
  List.iter
    (fun e ->
      List.iter
        (fun (p, expect) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s preserves form" (Wire.encoding_name e))
            expect
            (is_bits (roundtrip e p)))
        [
          (* a sparse snapshot: varint wins under Adaptive, yet Bits must survive *)
          (Payload.Share (Payload.Bits (bsnap universe [| 3; 9 |])), true);
          (* a dense snapshot: bitmap wins *)
          ( Payload.Reply (Payload.Bits (bsnap universe (Array.init universe Fun.id))),
            true );
          (* an explicit list dense enough for the bitmap codec must NOT
             come back as a snapshot *)
          (Payload.Share (Payload.Ids (Array.init universe Fun.id)), false);
          (Payload.Exchange (Payload.Ids [| 1; 5 |]), false);
        ])
    Wire.all_encodings

let test_size_matches_encode () =
  let payloads =
    [
      Payload.Probe;
      Payload.Share (Payload.Ids [||]);
      Payload.Share (Payload.Ids (Array.init 50 (fun i -> i * 3)));
      Payload.Exchange (Payload.Bits (bsnap universe [| 1; 2; 100 |]));
      Payload.Reply (Payload.Bits (bsnap universe (Array.init universe (fun i -> i))));
    ]
  in
  List.iter
    (fun e ->
      List.iter
        (fun p ->
          Alcotest.(check int)
            (Printf.sprintf "%s size" (Wire.encoding_name e))
            (Bytes.length (Wire.encode e ~universe p))
            (Wire.encoded_size e ~universe p))
        payloads)
    Wire.all_encodings

let test_relative_sizes () =
  (* a small delta: varint beats bitmap; a full set: bitmap wins *)
  let small = Payload.Share (Payload.Ids [| 1; 2; 3 |]) in
  let full = Payload.Share (Payload.Bits (bsnap universe (Array.init universe Fun.id))) in
  let size e p = Wire.encoded_size e ~universe p in
  Alcotest.(check bool) "varint < bitmap on small" true
    (size Wire.Varint_delta small < size Wire.Bitmap small);
  Alcotest.(check bool) "bitmap < varint on full" true
    (size Wire.Bitmap full < size Wire.Varint_delta full);
  Alcotest.(check bool) "adaptive <= varint (small)" true
    (size Wire.Adaptive small <= size Wire.Varint_delta small + 0);
  Alcotest.(check bool) "adaptive <= bitmap (full)" true
    (size Wire.Adaptive full <= size Wire.Bitmap full + 0);
  Alcotest.(check bool) "raw32 is the baseline" true
    (size Wire.Raw32 small >= size Wire.Varint_delta small)

let test_probe_size () =
  Alcotest.(check int) "probe is one byte" 1 (Wire.encoded_size Wire.Adaptive ~universe Payload.Probe)

let test_range_validation () =
  Alcotest.check_raises "too big" (Invalid_argument "Wire.encode: identifier out of range")
    (fun () -> ignore (Wire.encode Wire.Raw32 ~universe (Payload.Share (Payload.Ids [| universe |]))))

let test_decode_validation () =
  let bad cases =
    List.iter
      (fun (name, bytes) ->
        match Wire.decode Wire.Adaptive ~universe bytes with
        | Error _ -> ()
        | Ok _ -> Alcotest.failf "%s: decode accepted malformed input" name
        | exception e ->
          Alcotest.failf "%s: decode raised %s instead of returning Error" name
            (Printexc.to_string e))
      cases
  in
  bad
    [
      ("empty", Bytes.create 0);
      ("unknown kind", Bytes.of_string "\008\001\000");
      ("unknown codec", Bytes.of_string "\000\009\000");
      ("oversized probe", Bytes.of_string "\003\000");
      ("truncated varint", Bytes.of_string "\000\001\255");
      ("raw32 length mismatch", Bytes.of_string "\000\000\002\001\000\000\000");
      ("bitmap width mismatch", Bytes.of_string "\000\002\000");
      (* hostile length field: claims 2^35 raw32 elements in 4 bytes *)
      ("hostile raw32 count", Bytes.of_string "\000\000\128\128\128\128\128\001");
      (* varint codec claiming more elements than remaining bytes *)
      ("hostile varint count", Bytes.of_string "\000\001\200\001\005");
      (* gap sum overflowing past max_int must not wrap negative *)
      ("gap overflow", Bytes.of_string "\000\001\001\255\255\255\255\255\255\255\255\062")
    ]

(* Fuzz the decoder the way a flaky or hostile link would: take valid
   encodings and mutate them byte by byte — every single-byte overwrite,
   every truncation, and a trailing-garbage extension. Decode must
   return [Ok] (mutations can land on don't-care bits) or [Error], but
   never raise and never hang. *)
let test_decode_fuzz () =
  let payloads =
    [
      Payload.Probe;
      Payload.Halt;
      Payload.Share (Payload.Ids [||]);
      Payload.Share (Payload.Ids [| 0; 7; 250 |]);
      Payload.Exchange (Payload.Ids (Array.init 60 (fun i -> i * 5)));
      Payload.Reply (Payload.Bits (bsnap universe [| 1; 64; 299 |]));
    ]
  in
  let attempts = ref 0 in
  let try_decode name bytes =
    incr attempts;
    match Wire.decode Wire.Adaptive ~universe bytes with
    | Ok _ | Error _ -> ()
    | exception e ->
      Alcotest.failf "%s: decode raised %s on %S" name (Printexc.to_string e)
        (Bytes.to_string bytes)
  in
  List.iter
    (fun enc ->
      List.iter
        (fun p ->
          let valid = Wire.encode enc ~universe p in
          let len = Bytes.length valid in
          for i = 0 to len - 1 do
            (* all 255 single-byte overwrites at position i *)
            for b = 0 to 255 do
              if b <> Char.code (Bytes.get valid i) then begin
                let m = Bytes.copy valid in
                Bytes.set m i (Char.chr b);
                try_decode "overwrite" m
              end
            done;
            (* truncation to the first i bytes *)
            try_decode "truncate" (Bytes.sub valid 0 i)
          done;
          (* trailing garbage *)
          let extended = Bytes.extend valid 0 3 in
          Bytes.set extended len '\255';
          try_decode "extend" extended)
        payloads)
    Wire.all_encodings;
  Alcotest.(check bool) "fuzzed a meaningful corpus" true (!attempts > 10_000)

let prop_roundtrip =
  QCheck2.Test.make ~name:"wire roundtrip over random id sets and codecs" ~count:400
    QCheck2.Gen.(
      let* universe = int_range 1 600 in
      let* ids = list_size (int_range 0 80) (int_range 0 (universe - 1)) in
      let* enc = oneofl Wire.all_encodings in
      let* kind = int_range 0 2 in
      return (universe, ids, enc, kind))
    (fun (universe, ids, enc, kind) ->
      let data = Payload.Ids (Array.of_list ids) in
      let p =
        match kind with
        | 0 -> Payload.Share data
        | 1 -> Payload.Exchange data
        | _ -> Payload.Reply data
      in
      let encoded = Wire.encode enc ~universe p in
      match Wire.decode enc ~universe encoded with
      | Error _ -> false
      | Ok back ->
        Wire.ids_of_payload back = List.sort_uniq compare ids
        && Bytes.length encoded = Wire.encoded_size enc ~universe p)

let prop_detector_roundtrip =
  QCheck2.Test.make ~name:"detector payloads roundtrip at every codec" ~count:400
    QCheck2.Gen.(
      let* universe = int_range 1 600 in
      let* target = int_range 0 (universe - 1) in
      let* aux = int_range 0 (1 lsl 30) in
      let* enc = oneofl Wire.all_encodings in
      let* kind = int_range 0 2 in
      return (universe, target, aux, enc, kind))
    (fun (universe, target, aux, enc, kind) ->
      let p =
        match kind with
        | 0 -> Payload.Probe_req { target; nonce = aux }
        | 1 -> Payload.Probe_ack { target; nonce = aux }
        | _ -> Payload.Suspicion { target; version = aux }
      in
      let encoded = Wire.encode enc ~universe p in
      (* the detector payloads are codec-independent: two varints *)
      match Wire.decode enc ~universe encoded with
      | Error _ -> false
      | Ok back ->
        back = p
        && Bytes.length encoded = Wire.encoded_size enc ~universe p
        && Wire.ids_of_payload back = [])

let prop_adaptive_never_worse =
  QCheck2.Test.make ~name:"adaptive is min(varint, bitmap)" ~count:300
    QCheck2.Gen.(
      let* universe = int_range 1 600 in
      let* ids = list_size (int_range 0 200) (int_range 0 (universe - 1)) in
      return (universe, ids))
    (fun (universe, ids) ->
      let p = Payload.Share (Payload.Ids (Array.of_list ids)) in
      let size e = Wire.encoded_size e ~universe p in
      size Wire.Adaptive = min (size Wire.Varint_delta) (size Wire.Bitmap))

let () =
  ignore payload_testable;
  Alcotest.run "wire"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "probe" `Quick test_probe_roundtrip;
          Alcotest.test_case "halt" `Quick test_halt_roundtrip;
          Alcotest.test_case "kinds preserved" `Quick test_kind_preserved;
          Alcotest.test_case "id sets" `Quick test_ids_roundtrip_all;
          Alcotest.test_case "bitsets" `Quick test_bits_roundtrip;
          Alcotest.test_case "form preserved" `Quick test_form_preserved;
        ] );
      ( "sizes",
        [
          Alcotest.test_case "size matches encode" `Quick test_size_matches_encode;
          Alcotest.test_case "relative sizes" `Quick test_relative_sizes;
          Alcotest.test_case "probe size" `Quick test_probe_size;
        ] );
      ( "validation",
        [
          Alcotest.test_case "encode range" `Quick test_range_validation;
          Alcotest.test_case "decode malformed" `Quick test_decode_validation;
          Alcotest.test_case "decode mutation fuzz" `Quick test_decode_fuzz;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip; prop_detector_roundtrip; prop_adaptive_never_worse ] );
    ]
