open Repro_util
open Repro_discovery

let bsnap n ids = Knowledge.external_snapshot (Cset.of_array n ids)

let test_measure () =
  let bits = bsnap 20 [| 1; 2; 3 |] in
  Alcotest.(check int) "share bits" 3 (Payload.measure (Payload.Share (Payload.Bits bits)));
  Alcotest.(check int) "exchange ids" 2 (Payload.measure (Payload.Exchange (Payload.Ids [| 4; 5 |])));
  Alcotest.(check int) "reply ids" 1 (Payload.measure (Payload.Reply (Payload.Ids [| 4 |])));
  Alcotest.(check int) "empty ids" 0 (Payload.measure (Payload.Share (Payload.Ids [||])));
  Alcotest.(check int) "probe carries the sender" 1 (Payload.measure Payload.Probe)

let test_data_size () =
  Alcotest.(check int) "bits" 2 (Payload.data_size (Payload.Bits (bsnap 8 [| 0; 7 |])));
  Alcotest.(check int) "ids" 3 (Payload.data_size (Payload.Ids [| 1; 1; 1 |]))

let test_merge () =
  let labels = Array.init 10 (fun i -> i) in
  let k = Knowledge.create ~n:10 ~owner:0 ~labels () in
  Alcotest.(check int) "merge ids" 2 (Payload.merge_data k (Payload.Ids [| 3; 4 |]));
  Alcotest.(check int) "merge bits" 1
    (Payload.merge_data k (Payload.Bits (bsnap 10 [| 4; 5 |])));
  Alcotest.(check int) "cardinal" 4 (Knowledge.cardinal k)

let test_pp () =
  let str p = Format.asprintf "%a" Payload.pp p in
  Alcotest.(check string) "share" "share(2)" (str (Payload.Share (Payload.Ids [| 1; 2 |])));
  Alcotest.(check string) "exchange" "exchange(0)" (str (Payload.Exchange (Payload.Ids [||])));
  Alcotest.(check string) "reply" "reply(1)" (str (Payload.Reply (Payload.Ids [| 9 |])));
  Alcotest.(check string) "probe" "probe" (str Payload.Probe)

let () =
  Alcotest.run "payload"
    [
      ( "unit",
        [
          Alcotest.test_case "measure" `Quick test_measure;
          Alcotest.test_case "data size" `Quick test_data_size;
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "pp" `Quick test_pp;
        ] );
    ]
