(* Tests for the topology generators: structure, connectivity,
   determinism and name parsing. *)

open Repro_util
open Repro_graph

let rng () = Rng.create ~seed:12345

let test_path () =
  let t = Generate.path 5 in
  Alcotest.(check int) "edges" 8 (Topology.edge_count t);
  Alcotest.(check bool) "connected" true (Analyze.is_weakly_connected t);
  Alcotest.(check int) "diameter" 4 (Analyze.weak_diameter_exact t);
  Alcotest.(check (array int)) "end degree" [| 1 |] (Topology.out_neighbors t 0)

let test_directed_path () =
  let t = Generate.directed_path 4 in
  Alcotest.(check int) "edges" 3 (Topology.edge_count t);
  Alcotest.(check bool) "weakly connected" true (Analyze.is_weakly_connected t);
  Alcotest.(check int) "last node degree" 0 (Topology.out_degree t 3)

let test_cycles () =
  let t = Generate.cycle 6 in
  Alcotest.(check int) "cycle edges" 12 (Topology.edge_count t);
  Alcotest.(check int) "cycle diameter" 3 (Analyze.weak_diameter_exact t);
  let d = Generate.directed_cycle 6 in
  Alcotest.(check int) "dcycle edges" 6 (Topology.edge_count d);
  Alcotest.(check bool) "dcycle connected" true (Analyze.is_weakly_connected d)

let test_stars () =
  let t = Generate.star 10 in
  Alcotest.(check int) "star center degree" 9 (Topology.out_degree t 0);
  Alcotest.(check int) "star diameter" 2 (Analyze.weak_diameter_exact t);
  let i = Generate.inward_star 10 in
  Alcotest.(check int) "instar center out-degree" 0 (Topology.out_degree i 0);
  Alcotest.(check int) "instar leaf out-degree" 1 (Topology.out_degree i 5);
  Alcotest.(check bool) "instar weakly connected" true (Analyze.is_weakly_connected i)

let test_complete () =
  let t = Generate.complete 7 in
  Alcotest.(check int) "edges" 42 (Topology.edge_count t);
  Alcotest.(check int) "diameter" 1 (Analyze.weak_diameter_exact t)

let test_binary_tree () =
  let t = Generate.binary_tree 15 in
  Alcotest.(check int) "edges" 28 (Topology.edge_count t);
  Alcotest.(check bool) "connected" true (Analyze.is_weakly_connected t);
  Alcotest.(check int) "diameter" 6 (Analyze.weak_diameter_exact t)

let test_grid () =
  let t = Generate.grid ~rows:3 ~cols:4 in
  Alcotest.(check int) "nodes" 12 (Topology.n t);
  (* 3*3 vertical + 2*4 horizontal undirected edges, stored both ways *)
  Alcotest.(check int) "edges" 34 (Topology.edge_count t);
  Alcotest.(check int) "diameter" 5 (Analyze.weak_diameter_exact t)

let test_hypercube () =
  let t = Generate.hypercube ~dim:4 in
  Alcotest.(check int) "nodes" 16 (Topology.n t);
  Alcotest.(check int) "edges" (16 * 4) (Topology.edge_count t);
  Alcotest.(check int) "diameter" 4 (Analyze.weak_diameter_exact t)

let test_lollipop () =
  let t = Generate.lollipop 10 in
  Alcotest.(check bool) "connected" true (Analyze.is_weakly_connected t);
  (* clique of 5 + path of 5 hanging off it *)
  Alcotest.(check int) "diameter" 6 (Analyze.weak_diameter_exact t)

let test_k_out () =
  let t = Generate.k_out ~rng:(rng ()) ~n:200 ~k:3 in
  Alcotest.(check bool) "connected" true (Analyze.is_weakly_connected t);
  (* acquaintance is symmetric *)
  List.iter
    (fun (u, v) ->
      if not (Topology.mem_edge t v u) then Alcotest.failf "edge %d->%d not symmetric" u v)
    (Topology.edges t);
  (* every node picked k distinct targets, so out-degree >= k *)
  for v = 0 to 199 do
    if Topology.out_degree t v < 3 then Alcotest.failf "node %d degree < k" v
  done

let test_k_out_validation () =
  Alcotest.check_raises "k too large" (Invalid_argument "Generate.k_out: need 1 <= k < n")
    (fun () -> ignore (Generate.k_out ~rng:(rng ()) ~n:3 ~k:3))

let test_erdos_renyi () =
  let t = Generate.erdos_renyi ~rng:(rng ()) ~n:300 ~p:0.01 in
  Alcotest.(check bool) "connected (stitched)" true (Analyze.is_weakly_connected t);
  let sparse = Generate.erdos_renyi ~rng:(rng ()) ~n:50 ~p:0.0 in
  Alcotest.(check bool) "p=0 still stitched" true (Analyze.is_weakly_connected sparse)

let test_clustered () =
  let t = Generate.clustered ~rng:(rng ()) ~n:120 ~clusters:6 ~intra_k:2 in
  Alcotest.(check int) "nodes" 120 (Topology.n t);
  Alcotest.(check bool) "connected" true (Analyze.is_weakly_connected t)

let test_seeded_directory () =
  let t = Generate.seeded_directory ~rng:(rng ()) ~n:100 ~seeds:8 ~fanout:2 in
  Alcotest.(check bool) "connected" true (Analyze.is_weakly_connected t);
  (* seed tier is a clique *)
  Alcotest.(check int) "seed degree" 7 (Topology.out_degree t 0);
  (* clients only know seeds *)
  for v = 8 to 99 do
    Array.iter
      (fun u -> if u >= 8 then Alcotest.failf "client %d knows non-seed %d" v u)
      (Topology.out_neighbors t v);
    Alcotest.(check int) "client fanout" 2 (Topology.out_degree t v)
  done

let test_barabasi_albert () =
  let t = Generate.barabasi_albert ~rng:(rng ()) ~n:500 ~m:2 in
  Alcotest.(check bool) "connected" true (Analyze.is_weakly_connected t);
  (* scale-free: the max degree should dwarf the mean *)
  let s = Analyze.degree_stats t in
  Alcotest.(check bool) "hub exists" true (s.Stats.max > 4.0 *. s.Stats.mean);
  List.iter
    (fun (u, v) ->
      if not (Topology.mem_edge t v u) then Alcotest.failf "edge %d->%d not symmetric" u v)
    (Topology.edges t);
  Alcotest.check_raises "m >= 1" (Invalid_argument "Generate.barabasi_albert: m must be >= 1")
    (fun () -> ignore (Generate.barabasi_albert ~rng:(rng ()) ~n:10 ~m:0))

let test_watts_strogatz () =
  (* beta = 0 is exactly the ring lattice *)
  let lattice = Generate.watts_strogatz ~rng:(rng ()) ~n:50 ~k:2 ~beta:0.0 in
  Alcotest.(check int) "lattice edges" 200 (Topology.edge_count lattice);
  Alcotest.(check int) "lattice diameter" 13 (Analyze.weak_diameter_exact lattice);
  (* rewiring shrinks the diameter *)
  let small_world = Generate.watts_strogatz ~rng:(rng ()) ~n:200 ~k:2 ~beta:0.2 in
  let ring = Generate.watts_strogatz ~rng:(rng ()) ~n:200 ~k:2 ~beta:0.0 in
  Alcotest.(check bool) "connected" true (Analyze.is_weakly_connected small_world);
  Alcotest.(check bool) "small world" true
    (Analyze.weak_diameter_exact small_world < Analyze.weak_diameter_exact ring);
  Alcotest.check_raises "beta range"
    (Invalid_argument "Generate.watts_strogatz: beta out of range") (fun () ->
      ignore (Generate.watts_strogatz ~rng:(rng ()) ~n:10 ~k:1 ~beta:1.5))

let test_random_geometric () =
  let t = Generate.random_geometric ~rng:(rng ()) ~n:300 ~radius:0.08 in
  Alcotest.(check int) "nodes" 300 (Topology.n t);
  Alcotest.(check bool) "connected (stitched)" true (Analyze.is_weakly_connected t);
  (* a big radius approaches the complete graph *)
  let dense = Generate.random_geometric ~rng:(rng ()) ~n:40 ~radius:2.0 in
  Alcotest.(check int) "full radius is complete" (40 * 39) (Topology.edge_count dense);
  Alcotest.check_raises "radius positive"
    (Invalid_argument "Generate.random_geometric: radius must be positive") (fun () ->
      ignore (Generate.random_geometric ~rng:(rng ()) ~n:10 ~radius:0.0))

let test_determinism () =
  let a = Generate.k_out ~rng:(Rng.create ~seed:9) ~n:100 ~k:2 in
  let b = Generate.k_out ~rng:(Rng.create ~seed:9) ~n:100 ~k:2 in
  let c = Generate.k_out ~rng:(Rng.create ~seed:10) ~n:100 ~k:2 in
  Alcotest.(check bool) "same seed same graph" true (Topology.edges a = Topology.edges b);
  Alcotest.(check bool) "different seed different graph" true (Topology.edges a <> Topology.edges c)

let test_sorted_chain () =
  let t = Generate.sorted_chain 6 in
  Alcotest.(check int) "nodes" 6 (Topology.n t);
  (* every node except the minimum points one step DOWN the id order;
     nothing points up — that asymmetry is the worst case *)
  Alcotest.(check int) "edges" 5 (Topology.edge_count t);
  for v = 1 to 5 do
    Alcotest.(check bool) "points down" true (Topology.mem_edge t v (v - 1));
    Alcotest.(check bool) "never up" false (Topology.mem_edge t (v - 1) v)
  done;
  Alcotest.(check bool) "connected" true (Analyze.is_weakly_connected t);
  (* degenerate sizes stay well-formed *)
  Alcotest.(check int) "singleton" 0 (Topology.edge_count (Generate.sorted_chain 1))

let test_kniesburges () =
  let w = 3 and n = 12 in
  let t = Generate.kniesburges ~n ~w in
  Alcotest.(check int) "nodes" n (Topology.n t);
  (* each node points w back (the interleaved sorted lists)... *)
  for v = w to n - 1 do
    Alcotest.(check bool) "list edge" true (Topology.mem_edge t v (v - w))
  done;
  (* ...and the w list heads are chained head-to-head *)
  for i = 0 to w - 2 do
    Alcotest.(check bool) "head chain" true (Topology.mem_edge t i (i + 1))
  done;
  Alcotest.(check int) "edge count" (n - w + (w - 1)) (Topology.edge_count t);
  Alcotest.(check bool) "connected" true (Analyze.is_weakly_connected t);
  (* w = 1 degenerates to the sorted chain *)
  Alcotest.(check bool)
    "w=1 is the sorted chain" true
    (Topology.edges (Generate.kniesburges ~n:8 ~w:1) = Topology.edges (Generate.sorted_chain 8));
  Alcotest.check_raises "w must be positive"
    (Invalid_argument "Generate.kniesburges: need w >= 1") (fun () ->
      ignore (Generate.kniesburges ~n:8 ~w:0))

let test_adversarial_families () =
  (* every named worst case is buildable, connected, parseable by name —
     the contract the CLI, exp_adversarial and the chaos matrix rely on *)
  List.iter
    (fun f ->
      let name = Generate.family_name f in
      let t = Generate.build f ~rng:(rng ()) ~n:32 in
      if not (Analyze.is_weakly_connected t) then Alcotest.failf "%s not weakly connected" name;
      match Generate.family_of_string name with
      | Ok f' -> Alcotest.(check string) "name round-trips" name (Generate.family_name f')
      | Error e -> Alcotest.failf "failed to parse %s: %s" name e)
    Generate.adversarial_families;
  (* bare "kniesburges" defaults to the w = 8 instance *)
  match Generate.family_of_string "kniesburges" with
  | Ok f -> Alcotest.(check string) "default width" "kniesburges:8" (Generate.family_name f)
  | Error e -> Alcotest.fail e

let test_family_roundtrip () =
  List.iter
    (fun f ->
      match Generate.family_of_string (Generate.family_name f) with
      | Ok f' ->
        Alcotest.(check string) "roundtrip" (Generate.family_name f) (Generate.family_name f')
      | Error e -> Alcotest.failf "failed to parse %s: %s" (Generate.family_name f) e)
    Generate.all_families

let test_family_parse_errors () =
  List.iter
    (fun s ->
      match Generate.family_of_string s with
      | Ok _ -> Alcotest.failf "expected parse failure for %S" s
      | Error _ -> ())
    [ "nope"; "kout"; "kout:x"; "er:y"; "clustered:1"; "seeds:1:2:3" ]

let test_build_all_families () =
  List.iter
    (fun f ->
      let t = Generate.build f ~rng:(rng ()) ~n:64 in
      if not (Analyze.is_weakly_connected t) then
        Alcotest.failf "family %s not weakly connected" (Generate.family_name f);
      if Topology.n t > 64 then
        Alcotest.failf "family %s exceeded requested size" (Generate.family_name f))
    Generate.all_families

let prop_kout_connected_and_symmetric =
  QCheck2.Test.make ~name:"k_out graphs are symmetric and connected" ~count:50
    QCheck2.Gen.(
      let* n = int_range 5 150 in
      let* k = int_range 1 (min 4 (n - 1)) in
      let* seed = int_range 0 1000 in
      return (n, k, seed))
    (fun (n, k, seed) ->
      let t = Generate.k_out ~rng:(Rng.create ~seed) ~n ~k in
      Analyze.is_weakly_connected t
      && List.for_all (fun (u, v) -> Topology.mem_edge t v u) (Topology.edges t))

let () =
  Alcotest.run "generate"
    [
      ( "deterministic families",
        [
          Alcotest.test_case "path" `Quick test_path;
          Alcotest.test_case "directed path" `Quick test_directed_path;
          Alcotest.test_case "cycles" `Quick test_cycles;
          Alcotest.test_case "stars" `Quick test_stars;
          Alcotest.test_case "complete" `Quick test_complete;
          Alcotest.test_case "binary tree" `Quick test_binary_tree;
          Alcotest.test_case "grid" `Quick test_grid;
          Alcotest.test_case "hypercube" `Quick test_hypercube;
          Alcotest.test_case "lollipop" `Quick test_lollipop;
          Alcotest.test_case "sorted chain" `Quick test_sorted_chain;
          Alcotest.test_case "kniesburges" `Quick test_kniesburges;
          Alcotest.test_case "adversarial families" `Quick test_adversarial_families;
        ] );
      ( "random families",
        [
          Alcotest.test_case "k_out" `Quick test_k_out;
          Alcotest.test_case "k_out validation" `Quick test_k_out_validation;
          Alcotest.test_case "erdos_renyi" `Quick test_erdos_renyi;
          Alcotest.test_case "clustered" `Quick test_clustered;
          Alcotest.test_case "seeded directory" `Quick test_seeded_directory;
          Alcotest.test_case "barabasi-albert" `Quick test_barabasi_albert;
          Alcotest.test_case "watts-strogatz" `Quick test_watts_strogatz;
          Alcotest.test_case "random geometric" `Quick test_random_geometric;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "families",
        [
          Alcotest.test_case "name roundtrip" `Quick test_family_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_family_parse_errors;
          Alcotest.test_case "build all" `Quick test_build_all_families;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_kout_connected_and_symmetric ]);
    ]
