(* Adversarial scenario coverage: named worst-case topologies, WAN link
   profiles with bandwidth caps, and the content-audit layer that
   catches fabricated identifiers — on the simulators and on the
   multiplexed live backend. *)

open Repro_engine
open Repro_graph
open Repro_discovery
open Repro_net

let topology family ~n ~seed = Repro_experiments.Sweepcell.topology_of ~family ~n ~seed

let checked_exec ?lenient spec algo topo =
  let inv = Trace.Invariants.create ?lenient ~allow_inflight:(Fault.has_delays spec.Run.fault) () in
  let r = Run.exec_spec { spec with Run.trace = Trace.Invariants.sink inv } algo topo in
  Trace.Invariants.final_check inv r.Run.metrics;
  r

(* --- satellite: min_pointer vs hm on the sorted-id chain ------------- *)

(* The sorted chain is the structured worst case the paper's random
   ranks exist to defeat: raw identifiers increase along the chain, so
   min_pointer's deterministic convergecast collapses every pointer onto
   node 0, which then broadcasts full snapshots to everything it knows,
   round after round. Pin the separation so it cannot silently erode:
   min_pointer pays well over hm's pointer cost here (the margin grows
   with n — about 1.3x at n=256, 1.4–1.9x at n=1024), while on a benign
   random k-out graph the two are round-for-round comparable (T4). *)
let test_sorted_chain_separation () =
  let n = 256 in
  List.iter
    (fun seed ->
      let run algo = checked_exec { Run.default_spec with Run.seed; max_rounds = Some 2000 } algo (topology Generate.Sorted_chain ~n ~seed) in
      let mp = run Min_pointer.algorithm in
      let hm = run Hm_gossip.algorithm in
      Alcotest.(check bool) "min_pointer completes" true mp.Run.completed;
      Alcotest.(check bool) "hm completes" true hm.Run.completed;
      (* both still finish in O(log n)-ish rounds: the separation is cost,
         not liveness *)
      Alcotest.(check bool) "min_pointer rounds bounded" true (mp.Run.rounds <= 32);
      Alcotest.(check bool) "hm rounds bounded" true (hm.Run.rounds <= 32);
      let ratio = float_of_int mp.Run.pointers /. float_of_int (max 1 hm.Run.pointers) in
      if ratio < 1.15 then
        Alcotest.failf
          "seed %d: min_pointer/hm pointer ratio %.2f below 1.15 (mp=%d hm=%d) — the sorted-chain \
           separation regressed"
          seed ratio mp.Run.pointers hm.Run.pointers)
    [ 1; 2; 3 ]

let test_sorted_chain_min_pointer_deterministic () =
  (* on the sorted chain min_pointer never consults its rank randomness:
     the run is identical for every seed, which is exactly why the
     instance is adversarial — the outcome can be precomputed *)
  let n = 256 in
  let run seed =
    let r =
      checked_exec
        { Run.default_spec with Run.seed; max_rounds = Some 2000 }
        Min_pointer.algorithm
        (topology Generate.Sorted_chain ~n ~seed)
    in
    (r.Run.rounds, r.Run.messages, r.Run.pointers)
  in
  let a = run 1 and b = run 2 in
  Alcotest.(check bool)
    "min_pointer on sorted chain is seed-invariant" true (a = b)

(* --- named adversarial topologies are runnable end to end ------------ *)

let test_adversarial_families_complete () =
  List.iter
    (fun family ->
      List.iter
        (fun (algo : Algorithm.t) ->
          let seed = 1 and n = 64 in
          let r =
            checked_exec
              { Run.default_spec with Run.seed; max_rounds = Some 2000 }
              algo (topology family ~n ~seed)
          in
          if not r.Run.completed then
            Alcotest.failf "%s did not complete on %s" algo.Algorithm.name
              (Generate.family_name family))
        [ Hm_gossip.algorithm; Min_pointer.algorithm; Name_dropper.algorithm ])
    Generate.adversarial_families

let test_adversarial_families_parse () =
  List.iter
    (fun family ->
      let name = Generate.family_name family in
      match Generate.family_of_string name with
      | Ok f -> Alcotest.(check string) (name ^ " round-trips") name (Generate.family_name f)
      | Error e -> Alcotest.failf "%s did not parse: %s" name e)
    Generate.adversarial_families

(* --- WAN profiles in the engines ------------------------------------- *)

let wan2 ~n ~cross f =
  let half = List.init (n / 2) Fun.id in
  let rest = List.init (n - (n / 2)) (fun i -> (n / 2) + i) in
  Fault.with_wan f ~regions:[ half; rest ] ~cross

let test_wan_delay_completes_inflight () =
  (* cross-region delay carries messages over round boundaries: the run
     must complete, and the checker (in in-flight mode) must accept it *)
  let n = 64 and seed = 2 in
  let fault = wan2 ~n ~cross:{ Fault.default_link with Fault.delay = 2 } Fault.none in
  let r =
    checked_exec
      { Run.default_spec with Run.seed; fault; max_rounds = Some 2000 }
      Hm_gossip.algorithm
      (topology (Generate.K_out 3) ~n ~seed)
  in
  Alcotest.(check bool) "completed under WAN delay" true r.Run.completed;
  Alcotest.(check bool) "hm is delay-tolerant, nothing dropped" true (r.Run.dropped = 0)

let test_wan_delay_needs_inflight_mode () =
  (* the same run under the strict checker must trip the round-boundary
     conservation invariant — pins that allow_inflight is a real
     relaxation, not a no-op *)
  let n = 64 and seed = 2 in
  let fault = wan2 ~n ~cross:{ Fault.default_link with Fault.delay = 2 } Fault.none in
  let inv = Trace.Invariants.create () in
  match
    Run.exec_spec
      { Run.default_spec with Run.seed; fault; max_rounds = Some 2000; trace = Trace.Invariants.sink inv }
      Hm_gossip.algorithm
      (topology (Generate.K_out 3) ~n ~seed)
  with
  | exception Trace.Invariants.Violation _ -> ()
  | _ -> Alcotest.fail "strict checker accepted messages crossing a round boundary"

let test_wan_loss_slows_cross_region () =
  (* an identical fleet with a lossy WAN crossing completes but pays for
     it; the intra-region links stay clean *)
  let n = 64 and seed = 3 in
  let clean =
    checked_exec { Run.default_spec with Run.seed; max_rounds = Some 2000 } Hm_gossip.algorithm
      (topology (Generate.K_out 3) ~n ~seed)
  in
  let lossy_fault = wan2 ~n ~cross:{ Fault.default_link with Fault.loss = 0.4 } Fault.none in
  let lossy =
    checked_exec
      { Run.default_spec with Run.seed; fault = lossy_fault; max_rounds = Some 2000 }
      Hm_gossip.algorithm
      (topology (Generate.K_out 3) ~n ~seed)
  in
  Alcotest.(check bool) "completed under WAN loss" true lossy.Run.completed;
  Alcotest.(check bool) "cross-region loss dropped messages" true (lossy.Run.dropped > 0);
  Alcotest.(check bool) "WAN loss costs rounds" true (lossy.Run.rounds >= clean.Run.rounds)

(* --- bandwidth caps --------------------------------------------------- *)

(* Drive the sync engine directly with handlers that flood one link:
   with cap=k, exactly k messages per round cross it and the rest are
   throttled — deterministic, no algorithm in the way. *)
let test_cap_bounds_link_sync () =
  let cap = 2 and sends_per_round = 5 and rounds = 4 in
  let delivered = ref 0 and throttled = ref 0 in
  let events = ref [] in
  let sink = Trace.callback (fun e -> events := e :: !events) in
  let handlers =
    {
      Sim.round_begin =
        (fun ~node ~round:_ ~send ->
          if node = 0 then
            for _ = 1 to sends_per_round do
              send ~dst:1 ()
            done);
      deliver = (fun ~node:_ ~src:_ ~round:_ () -> incr delivered);
    }
  in
  let config =
    {
      Sim.max_rounds = rounds;
      fault = Fault.with_cap Fault.none ~limit:cap;
      engine_seed = 0;
      trace = sink;
      jobs = 1;
    }
  in
  let outcome =
    Sim.run ~n:2 ~config ~handlers ~measure:(fun () -> 1) ~stop:(fun ~round:_ ~alive:_ -> false) ()
  in
  List.iter
    (function
      | Trace.Drop { reason = Trace.Throttled; _ } -> incr throttled
      | _ -> ())
    !events;
  Alcotest.(check int) "cap messages per round delivered" (cap * rounds) !delivered;
  Alcotest.(check int) "excess throttled" ((sends_per_round - cap) * rounds) !throttled;
  Alcotest.(check int) "metrics agree on drops"
    ((sends_per_round - cap) * rounds)
    (Metrics.messages_dropped outcome.Sim.metrics)

let test_cap_saturated_run_completes () =
  (* a loss-tolerant algorithm under a saturated WAN crossing: progress
     slows but discovery still completes, and the checker accepts
     throttled drops like any loss *)
  let n = 64 and seed = 1 in
  let fault = wan2 ~n ~cross:{ Fault.default_link with Fault.cap = 1 } Fault.none in
  let r =
    checked_exec
      { Run.default_spec with Run.seed; fault; max_rounds = Some 2000 }
      Hm_gossip.algorithm
      (topology (Generate.K_out 3) ~n ~seed)
  in
  Alcotest.(check bool) "completed under cap" true r.Run.completed

(* --- content audit: fabricated ids are caught ------------------------- *)

(* On the sorted chain node 1 initially knows {0, 1}; fabricating an id
   it never learns makes its very first advertisement a provenance
   violation. The id must sit inside the universe [0, n) or injection
   (correctly) discards it. *)
let fabricating_fault ~id = Fault.with_audit (Fault.with_fabrication Fault.none ~node:1 ~id) true

let expect_provenance_violation name ~id f =
  match f () with
  | exception Trace.Invariants.Violation msg ->
    let contains needle =
      let nl = String.length needle and hl = String.length msg in
      let rec at i = i + nl <= hl && (String.sub msg i nl = needle || at (i + 1)) in
      at 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "%s names the fabrication (%s)" name msg)
      true
      (contains "provenance violation" && contains "node 1"
      && contains (Printf.sprintf "id %d" id))
  | _ -> Alcotest.failf "%s: fabricated id %d escaped the audit" name id

let test_audit_catches_fabricator_sim () =
  expect_provenance_violation "sync simulator" ~id:50 (fun () ->
      let inv = Trace.Invariants.create () in
      Run.exec_spec
        {
          Run.default_spec with
          Run.seed = 1;
          fault = fabricating_fault ~id:50;
          max_rounds = Some 2000;
          trace = Trace.Invariants.sink inv;
        }
        Hm_gossip.algorithm
        (topology Generate.Sorted_chain ~n:64 ~seed:1))

let test_audit_catches_fabricator_async () =
  expect_provenance_violation "async simulator" ~id:50 (fun () ->
      let inv = Trace.Invariants.create () in
      Run_async.exec_spec
        {
          Run_async.default_spec with
          Run_async.seed = 1;
          fault = fabricating_fault ~id:50;
          trace = Trace.Invariants.sink inv;
        }
        Hm_gossip.algorithm
        (topology Generate.Sorted_chain ~n:64 ~seed:1))

let test_audit_catches_fabricator_mux () =
  expect_provenance_violation "mux backend" ~id:20 (fun () ->
      let inv = Trace.Invariants.create () in
      Mux.exec_spec
        {
          Run_async.default_spec with
          Run_async.seed = 1;
          fault = fabricating_fault ~id:20;
          trace = Trace.Invariants.sink inv;
        }
        Hm_gossip.algorithm
        (topology Generate.Sorted_chain ~n:32 ~seed:1))

let test_audit_clean_runs_pass () =
  (* auditing an honest fleet must never fire: genesis/content events
     flow, the provenance sets grow, nothing is flagged *)
  let audit_only = Fault.with_audit Fault.none true in
  let n = 64 and seed = 1 in
  let r =
    checked_exec
      { Run.default_spec with Run.seed; fault = audit_only; max_rounds = Some 2000 }
      Hm_gossip.algorithm
      (topology (Generate.K_out 3) ~n ~seed)
  in
  Alcotest.(check bool) "sync audited run completes" true r.Run.completed;
  (* and on the mux, where content events come from the live cores *)
  let inv = Trace.Invariants.create () in
  let r, _finals =
    Mux.exec_spec
      { Run_async.default_spec with Run_async.seed; fault = audit_only; trace = Trace.Invariants.sink inv }
      Hm_gossip.algorithm
      (topology (Generate.K_out 3) ~n:32 ~seed)
  in
  Trace.Invariants.final_check inv r.Run_async.metrics;
  Alcotest.(check bool) "mux audited run completes" true r.Run_async.completed

let test_audit_restart_resets_provenance () =
  (* a restarted node re-emits genesis: its provenance resets to initial
     knowledge and the re-learning that follows is genuine, not flagged *)
  let n = 64 and seed = 3 in
  let fault =
    Fault.with_audit
      (Fault.with_restart (Fault.with_crash Fault.none ~node:5 ~round:3) ~node:5 ~round:6)
      true
  in
  (* lenient mode: restart Join events are expected, same as every
     restart test *)
  let inv = Trace.Invariants.create ~lenient:true () in
  let r =
    Run.exec_spec
      { Run.default_spec with Run.seed; fault; max_rounds = Some 2000; trace = Trace.Invariants.sink inv }
      Hm_gossip.algorithm
      (topology (Generate.K_out 3) ~n ~seed)
  in
  Trace.Invariants.final_check inv r.Run.metrics;
  Alcotest.(check bool) "completed across audited restart" true r.Run.completed

let () =
  Alcotest.run "adversarial"
    [
      ( "sorted-chain",
        [
          Alcotest.test_case "min_pointer/hm separation" `Quick test_sorted_chain_separation;
          Alcotest.test_case "min_pointer seed-invariant" `Quick
            test_sorted_chain_min_pointer_deterministic;
        ] );
      ( "topologies",
        [
          Alcotest.test_case "all families complete" `Quick test_adversarial_families_complete;
          Alcotest.test_case "names parse" `Quick test_adversarial_families_parse;
        ] );
      ( "wan",
        [
          Alcotest.test_case "delay in flight" `Quick test_wan_delay_completes_inflight;
          Alcotest.test_case "strict checker trips" `Quick test_wan_delay_needs_inflight_mode;
          Alcotest.test_case "lossy crossing" `Quick test_wan_loss_slows_cross_region;
        ] );
      ( "caps",
        [
          Alcotest.test_case "cap bounds one link" `Quick test_cap_bounds_link_sync;
          Alcotest.test_case "saturated run completes" `Quick test_cap_saturated_run_completes;
        ] );
      ( "audit",
        [
          Alcotest.test_case "catches fabricator (sync)" `Quick test_audit_catches_fabricator_sim;
          Alcotest.test_case "catches fabricator (async)" `Quick
            test_audit_catches_fabricator_async;
          Alcotest.test_case "catches fabricator (mux)" `Quick test_audit_catches_fabricator_mux;
          Alcotest.test_case "clean runs pass" `Quick test_audit_clean_runs_pass;
          Alcotest.test_case "restart resets provenance" `Quick
            test_audit_restart_resets_provenance;
        ] );
    ]
