(* Tests for the asynchronous engine and the algorithms running on it. *)

open Repro_engine
open Repro_graph
open Repro_discovery

let kout ~n ~seed = Repro_experiments.Sweepcell.topology_of ~family:(Generate.K_out 3) ~n ~seed

(* --- engine semantics --- *)

let test_validation () =
  let handlers =
    {
      Sim.round_begin = (fun ~node:_ ~round:_ ~send:_ -> ());
      deliver = (fun ~node:_ ~src:_ ~round:_ () -> ());
    }
  in
  let run config =
    ignore
      (Async_sim.run ~n:1 ~config ~handlers ~measure:(fun _ -> 0)
         ~stop:(fun ~time:_ ~alive:_ -> false)
         ())
  in
  Alcotest.check_raises "horizon" (Invalid_argument "Async_sim.run: horizon must be positive")
    (fun () -> run { Async_sim.default_config with Async_sim.horizon = 0.0 });
  Alcotest.check_raises "jitter" (Invalid_argument "Async_sim.run: jitter must be in [0, 1)")
    (fun () -> run { Async_sim.default_config with Async_sim.tick_jitter = 1.0 });
  Alcotest.check_raises "latency" (Invalid_argument "Async_sim.run: invalid latency interval")
    (fun () -> run { Async_sim.default_config with Async_sim.latency_min = 0.5; latency_max = 0.1 })

let test_ticks_happen_at_period_rate () =
  let ticks_of = Array.make 2 0 in
  let handlers =
    {
      Sim.round_begin = (fun ~node ~round:_ ~send:_ -> ticks_of.(node) <- ticks_of.(node) + 1);
      deliver = (fun ~node:_ ~src:_ ~round:_ () -> ());
    }
  in
  let config = { Async_sim.default_config with Async_sim.horizon = 100.0; tick_jitter = 0.2 } in
  let outcome =
    Async_sim.run ~n:2 ~config ~handlers ~measure:(fun _ -> 0)
      ~stop:(fun ~time:_ ~alive:_ -> false)
      ()
  in
  Alcotest.(check bool) "ran to horizon" false outcome.Async_sim.completed;
  (* periods lie in [0.8, 1.2], so 100 time units give 83..125 ticks *)
  Array.iteri
    (fun v t ->
      if t < 80 || t > 130 then Alcotest.failf "node %d ticked %d times in 100 units" v t)
    ticks_of;
  Alcotest.(check int) "outcome counts all ticks" (ticks_of.(0) + ticks_of.(1))
    outcome.Async_sim.ticks

let test_messages_arrive_within_latency_bounds () =
  let send_time = Hashtbl.create 16 in
  let ok = ref true in
  let clock = ref 0.0 in
  let handlers =
    {
      Sim.round_begin =
        (fun ~node ~round ~send ->
          if node = 0 then begin
            Hashtbl.replace send_time round !clock;
            send ~dst:1 round
          end);
      deliver =
        (fun ~node:_ ~src:_ ~round:_ msg ->
          match Hashtbl.find_opt send_time msg with
          | None -> ok := false
          | Some _ -> ());
    }
  in
  (* the engine has no explicit clock exposure; we approximate by
     checking only causality (delivery after send) via the hashtable *)
  let config = { Async_sim.default_config with Async_sim.horizon = 50.0 } in
  let outcome =
    Async_sim.run ~n:2 ~config ~handlers ~measure:(fun _ -> 0)
      ~stop:(fun ~time ~alive:_ ->
        clock := time;
        false)
      ()
  in
  Alcotest.(check bool) "all deliveries causally follow sends" true !ok;
  Alcotest.(check bool) "messages flowed" true (Metrics.messages_delivered outcome.Async_sim.metrics > 0)

let test_determinism () =
  let run () =
    let r =
      Run_async.exec_spec
        { Run_async.default_spec with Run_async.seed = 7 }
        Hm_gossip.algorithm (kout ~n:96 ~seed:7)
    in
    (r.Run_async.completed, r.Run_async.time, r.Run_async.ticks, r.Run_async.messages)
  in
  Alcotest.(check bool) "identical outcomes" true (run () = run ())

let test_crash_in_async () =
  let fault = Fault.with_crash Fault.none ~node:0 ~round:3 in
  let r =
    Run_async.exec_spec
      {
        Run_async.default_spec with
        Run_async.seed = 2;
        fault;
        completion = Run.Survivors_strong;
      }
      Hm_gossip.algorithm (kout ~n:64 ~seed:2)
  in
  Alcotest.(check bool) "survivors complete" true r.Run_async.completed;
  Alcotest.(check bool) "victim dead" false r.Run_async.alive.(0)

(* --- algorithms under asynchrony --- *)

let test_algorithms_complete_async () =
  List.iter
    (fun (algo : Algorithm.t) ->
      List.iter
        (fun seed ->
          let r =
            Run_async.exec_spec
              { Run_async.default_spec with Run_async.seed }
              algo (kout ~n:96 ~seed)
          in
          if not r.Run_async.completed then
            Alcotest.failf "%s seed=%d did not complete asynchronously (t=%.1f)"
              algo.Algorithm.name seed r.Run_async.time)
        [ 1; 2; 3 ])
    [
      Hm_gossip.algorithm;
      Name_dropper.algorithm;
      Rand_gossip.algorithm;
      Min_pointer.algorithm;
      Swamping.algorithm;
    ]

let test_async_tracks_sync_rounds () =
  (* completion time in time units should be within a small factor of the
     synchronous round count — asynchrony must not change the asymptotics *)
  let n = 256 and seed = 4 in
  let topo = kout ~n ~seed in
  let sync = Run.exec_spec { Run.default_spec with Run.seed } Hm_gossip.algorithm topo in
  let asyn =
    Run_async.exec_spec { Run_async.default_spec with Run_async.seed } Hm_gossip.algorithm topo
  in
  Alcotest.(check bool) "both complete" true (sync.Run.completed && asyn.Run_async.completed);
  let ratio = asyn.Run_async.time /. float_of_int sync.Run.rounds in
  if ratio > 4.0 then
    Alcotest.failf "async completion %.1f >> sync rounds %d" asyn.Run_async.time sync.Run.rounds

let test_async_with_loss_and_jitter () =
  let fault = Fault.with_loss Fault.none ~p:0.2 in
  let r =
    Run_async.exec_spec
      {
        Run_async.default_spec with
        Run_async.seed = 5;
        fault;
        tick_jitter = 0.3;
        latency = (0.1, 2.5);
      }
      Hm_gossip.algorithm (kout ~n:96 ~seed:5)
  in
  Alcotest.(check bool) "heavy asynchrony tolerated" true r.Run_async.completed

let () =
  Alcotest.run "async"
    [
      ( "engine",
        [
          Alcotest.test_case "config validation" `Quick test_validation;
          Alcotest.test_case "tick rate" `Quick test_ticks_happen_at_period_rate;
          Alcotest.test_case "delivery causality" `Quick test_messages_arrive_within_latency_bounds;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "crash" `Quick test_crash_in_async;
        ] );
      ( "algorithms",
        [
          Alcotest.test_case "all complete asynchronously" `Quick test_algorithms_complete_async;
          Alcotest.test_case "async time tracks sync rounds" `Quick test_async_tracks_sync_rounds;
          Alcotest.test_case "loss + heavy jitter" `Quick test_async_with_loss_and_jitter;
        ] );
    ]
