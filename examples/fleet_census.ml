(* Fleet census: computing a global aggregate on top of discovery.

   Run with:  dune exec examples/fleet_census.exe

   Discovery is rarely the end goal — it is the substrate for the first
   global computation. This example runs hm to the leader-election point,
   then uses the elected coordinator to take a census of the fleet: each
   machine reports a local attribute (here: its free-memory figure) to
   the leader, which aggregates and publishes the result — two more
   rounds on top of discovery.

   The point being demonstrated: with the leader/min-rank structure that
   hm already maintains, any snapshot aggregate (sum, min, max, count)
   costs O(n) messages and O(1) extra rounds after discovery. *)

open Repro_util
open Repro_graph
open Repro_engine
open Repro_discovery

let n = 1024
let seed = 12

(* each machine's local attribute: deterministic pseudo-random MB free *)
let free_mb node = 512 + (Rng.int (Rng.substream ~seed ~index:(0xCE25 + node)) 15_872)

let () =
  let rng = Rng.substream ~seed ~index:0x70b0 in
  let topology = Generate.k_out ~rng ~n ~k:3 in

  (* phase 1: discovery to the leader point *)
  let r =
    Run.exec_spec
      { Run.default_spec with Run.seed; completion = Run.Leader }
      Hm_gossip.algorithm topology
  in
  assert r.Run.completed;
  Printf.printf "phase 1 — discovery (leader form): %d rounds, %d messages\n" r.Run.rounds
    r.Run.messages;

  (* identify the leader the run converged on: the global minimum rank *)
  let labels = Rng.permutation (Rng.substream ~seed ~index:0) n in
  let leader = ref 0 in
  Array.iteri (fun v l -> if l < labels.(!leader) then leader := v) labels;
  Printf.printf "coordinator: node %d\n" !leader;

  (* phase 2: one convergecast + one broadcast for the census. Everyone
     knows the leader, so this is two synchronous rounds of direct
     messages — modelled here directly on top of the engine. *)
  let reports = ref 0 in
  let total = ref 0 and mn = ref max_int and mx = ref min_int in
  let handlers =
    {
      Sim.round_begin =
        (fun ~node ~round ~send ->
          if round = 1 && node <> !leader then send ~dst:!leader (free_mb node)
          else if round = 2 && node = !leader then begin
            (* publish: leader answers every machine with the aggregate *)
            for v = 0 to n - 1 do
              if v <> node then send ~dst:v (!total / n)
            done
          end);
      deliver =
        (fun ~node ~src:_ ~round:_ value ->
          if node = !leader && !reports < n - 1 then begin
            incr reports;
            total := !total + value;
            if value < !mn then mn := value;
            if value > !mx then mx := value
          end);
    }
  in
  let census =
    Sim.run ~n ~config:Sim.default_config ~handlers ~measure:(fun _ -> 1)
      ~stop:(fun ~round ~alive:_ -> round >= 2)
      ()
  in
  total := !total + free_mb !leader;
  Printf.printf "phase 2 — census: %d rounds, %d messages\n" census.Sim.rounds
    (Metrics.messages_sent census.Sim.metrics);
  Printf.printf "fleet memory: total %.1f GB, mean %d MB, min %d MB, max %d MB (over %d reports)\n"
    (float_of_int !total /. 1024.0)
    (!total / n) !mn !mx (!reports + 1);

  (* verify against direct computation *)
  let expected = List.init n free_mb |> List.fold_left ( + ) 0 in
  assert (expected = !total);
  print_endline "(aggregate verified against direct computation)"
