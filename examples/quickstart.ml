(* Quickstart: the five-minute tour of the public API.

   Run with:  dune exec examples/quickstart.exe

   We build an initial knowledge graph (who starts out knowing whom),
   pick an algorithm from the registry, execute it on the synchronous
   simulator, and read off the cost measures the paper reports. *)

open Repro_util
open Repro_graph
open Repro_discovery

let () =
  (* 1. An initial knowledge graph: 1,000 machines, each starting out
     knowing 3 random acquaintances. *)
  let n = 1000 in
  let rng = Rng.create ~seed:42 in
  let topology = Generate.k_out ~rng ~n ~k:3 in
  Printf.printf "topology: %d machines, %d initial knowledge edges, diameter ~%d\n" n
    (Topology.edge_count topology)
    (Analyze.weak_diameter_estimate ~rng topology);

  (* 2. Pick algorithms. `Registry.find` also accepts ablation specs
     such as "hm:full" or "rand:push/f2". *)
  let hm = Hm_gossip.algorithm in
  let name_dropper = Name_dropper.algorithm in

  (* 3. Run until every machine knows every other machine. A run is
     described by a [Run.spec] record; start from [Run.default_spec]
     and override what differs. *)
  let spec = { Run.default_spec with Run.seed = 7 } in
  let show algo =
    let r = Run.exec_spec spec algo topology in
    Printf.printf "%-14s rounds=%-3d messages=%-7d pointers=%-9d completed=%b\n"
      r.Run.algorithm r.Run.rounds r.Run.messages r.Run.pointers r.Run.completed
  in
  print_endline "\ncomplete resource discovery (everyone knows everyone):";
  show hm;
  show name_dropper;

  (* 4. Watch the mechanism: mean knowledge-set size after each round.
     hm's growth is doubly exponential — the squaring is visible as the
     gap between consecutive rounds widening. *)
  let r = Run.exec_spec { spec with Run.track_growth = true } hm topology in
  print_endline "\nhm knowledge growth (mean set size after each round):";
  Array.iteri
    (fun i v -> Printf.printf "  round %d: %7.1f / %d\n" (i + 1) v n)
    r.Run.mean_knowledge_series
