(* Peer-to-peer overlay formation over a lossy wide-area network.

   Run with:  dune exec examples/p2p_overlay.exe

   2,048 peers join an unstructured overlay: each knows a handful of
   peers exchanged out-of-band (a symmetric 3-out random graph). The
   network drops 20% of messages. Full membership knowledge is the
   substrate for building the real overlay links on top.

   The example demonstrates the fault-tolerance machinery: hm's
   reply-acknowledged delta reports retransmit through the loss, and the
   per-round progress trace shows the cost as a delay, not a failure. *)

open Repro_util
open Repro_graph
open Repro_engine
open Repro_discovery

let n = 2048
let loss = 0.2

let () =
  let rng = Rng.create ~seed:99 in
  let topology = Generate.k_out ~rng ~n ~k:3 in
  let fault = Fault.with_loss Fault.none ~p:loss in
  Printf.printf "overlay: %d peers, 3 bootstrap contacts each, %.0f%% message loss\n\n" n
    (100.0 *. loss);

  let algos =
    [
      Hm_gossip.algorithm;
      Hm_gossip.with_variant ~upward:Hm_gossip.Full ();
      Rand_gossip.algorithm;
      Name_dropper.algorithm;
    ]
  in
  let spec = { Run.default_spec with Run.seed = 5; fault; max_rounds = Some 2000 } in
  Printf.printf "%-14s %8s %10s %12s %10s\n" "algorithm" "rounds" "messages" "pointers" "dropped";
  List.iter
    (fun algo ->
      let r = Run.exec_spec spec algo topology in
      Printf.printf "%-14s %8d %10d %12d %10d%s\n" r.Run.algorithm r.Run.rounds r.Run.messages
        r.Run.pointers r.Run.dropped
        (if r.Run.completed then "" else "  (DID NOT FINISH)"))
    algos;

  (* progress trace: membership completeness per round under loss *)
  let r = Run.exec_spec { spec with Run.track_growth = true } Hm_gossip.algorithm topology in
  print_endline "\nhm membership completeness by round (under 20% loss):";
  Array.iteri
    (fun i v ->
      let pct = 100.0 *. v /. float_of_int n in
      let bar = String.make (int_of_float (pct /. 2.5)) '#' in
      Printf.printf "  round %2d %6.1f%% %s\n" (i + 1) pct bar)
    r.Run.mean_knowledge_series
