(* Datacenter bootstrap: the scenario that motivates resource discovery.

   Run with:  dune exec examples/datacenter_bootstrap.exe

   A fleet of 4,096 machines boots knowing nothing but the addresses of
   two directory seeds (drawn from a 16-node directory tier). The fleet
   must reach a state where every machine can address every other — the
   precondition for building an overlay, a DHT, or a scheduler.

   We compare the paper's algorithm against Name-Dropper, then repeat
   the exercise with half of the directory tier crashing mid-bootstrap:
   discovery must degrade gracefully, not wedge, when the very nodes
   everyone initially depends on disappear. *)

open Repro_util
open Repro_graph
open Repro_engine
open Repro_discovery

let n = 4096
let seeds = 16
let fanout = 2

let () =
  let rng = Rng.create ~seed:2026 in
  let topology = Generate.seeded_directory ~rng ~n ~seeds ~fanout in
  Printf.printf
    "fleet: %d machines; %d directory seeds; every other machine boots knowing %d seeds\n\n" n
    seeds fanout;

  let show ?(fault = Fault.none) ?(completion = Run.Strong) label algo =
    let spec =
      { Run.default_spec with Run.seed = 11; fault; completion; max_rounds = Some 2000 }
    in
    let r = Run.exec_spec spec algo topology in
    Printf.printf "  %-36s rounds=%-4d messages/node=%-6.1f completed=%b\n" label r.Run.rounds
      (float_of_int r.Run.messages /. float_of_int n)
      r.Run.completed
  in

  print_endline "clean bootstrap (everyone learns everyone):";
  show "hm (this paper)" Hm_gossip.algorithm;
  show "name_dropper (HLL99)" Name_dropper.algorithm;
  show "min_pointer (deterministic)" Min_pointer.algorithm;

  (* Crash half of the directory tier at round 3, mid-bootstrap. One
     round after the first reports, every seed has already gossiped its
     clients' addresses across the (clique-connected) directory tier, so
     the survivors can still discover each other. A crash at round 2
     would be information-theoretically unsurvivable: a quarter of the
     clients would lose both of their seeds before their own address had
     ever escaped, leaving identifiers that no surviving machine holds. *)
  let fault =
    Fault.with_crashes Fault.none (List.init (seeds / 2) (fun i -> (i, 3)))
  in
  Printf.printf "\n%d of %d directory seeds crash at round 3:\n" (seeds / 2) seeds;
  show ~fault ~completion:Run.Survivors_strong "hm (this paper)" Hm_gossip.algorithm;
  show ~fault ~completion:Run.Survivors_strong "name_dropper (HLL99)" Name_dropper.algorithm;

  (* The weak/leader form of the problem is what a scheduler bootstrap
     actually needs: one machine that knows the whole fleet, known by
     all. It is reached earlier than full discovery. *)
  let r =
    Run.exec_spec
      { Run.default_spec with Run.seed = 11; completion = Run.Leader; max_rounds = Some 2000 }
      Hm_gossip.algorithm topology
  in
  Printf.printf "\nleader form (one machine knows all, all know it): hm finishes in %d rounds\n"
    r.Run.rounds
