(* discovery_cli — run a single resource-discovery configuration and
   report its cost measures.

   Examples:
     discovery_cli run --algo hm --topology kout:3 -n 4096
     discovery_cli run --algo name_dropper --topology path -n 1024 --seed 7
     discovery_cli run --algo "rand:push/f2" --topology seeds:16:2 -n 8192 --growth
     discovery_cli run --algo hm -n 4096 --seeds 10 --jobs 4
     discovery_cli list
     discovery_cli topo --topology clustered:8:3 -n 1024
*)

open Repro_util
open Repro_graph
open Repro_discovery
open Cmdliner

let topology_conv =
  let parse s = Generate.family_of_string s |> Result.map_error (fun e -> `Msg e) in
  let print ppf f = Format.pp_print_string ppf (Generate.family_name f) in
  Arg.conv (parse, print)

let algo_conv =
  let parse s = Registry.find s |> Result.map_error (fun e -> `Msg e) in
  let print ppf (a : Algorithm.t) = Format.pp_print_string ppf a.Algorithm.name in
  Arg.conv (parse, print)

let completion_conv =
  let parse = function
    | "strong" -> Ok Run.Strong
    | "survivors" -> Ok Run.Survivors_strong
    | "leader" -> Ok Run.Leader
    | "quiescent" -> Ok Run.Quiescent
    | s -> Error (`Msg (Printf.sprintf "unknown completion %S (strong|survivors|leader|quiescent)" s))
  in
  let print ppf c =
    Format.pp_print_string ppf
      (match c with
      | Run.Strong -> "strong"
      | Run.Survivors_strong -> "survivors"
      | Run.Leader -> "leader"
      | Run.Quiescent -> "quiescent")
  in
  Arg.conv (parse, print)

let n_arg =
  Arg.(value & opt int 1024 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of machines.")

let seed_arg = Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"Master random seed.")

let topology_arg =
  Arg.(
    value
    & opt topology_conv (Generate.K_out 3)
    & info [ "t"; "topology" ] ~docv:"FAMILY"
        ~doc:
          "Initial knowledge graph family: path, dpath, cycle, dcycle, star, instar, complete, \
           tree, grid, hypercube, lollipop, kout:K, er:P, clustered:C:K, seeds:S:F, ba:M, \
           ws:K:B, geo:R.")

let algo_arg =
  Arg.(
    value
    & opt algo_conv Hm_gossip.algorithm
    & info [ "a"; "algo" ] ~docv:"ALGO" ~doc:("Algorithm: " ^ Registry.parse_doc ()))

let loss_arg =
  Arg.(value & opt float 0.0 & info [ "loss" ] ~docv:"P" ~doc:"Per-message drop probability.")

let crashes_arg =
  Arg.(
    value & opt int 0
    & info [ "crashes" ] ~docv:"K" ~doc:"Crash K random nodes during the first 5 rounds.")

let max_rounds_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-rounds" ] ~docv:"R" ~doc:"Round budget (default 4n + 64).")

let completion_arg =
  Arg.(
    value
    & opt completion_conv Run.Strong
    & info [ "completion" ] ~docv:"PRED" ~doc:"Completion predicate: strong, survivors, leader.")

let growth_arg =
  Arg.(value & flag & info [ "growth" ] ~doc:"Print the per-round mean knowledge-size series.")

let seeds_arg =
  Arg.(
    value & opt int 1
    & info [ "seeds" ] ~docv:"K"
        ~doc:
          "Replicate the run over K consecutive seeds (seed .. seed+K-1), sharded across \
           worker domains, and report per-seed results plus aggregate statistics.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for $(b,--seeds) replication (default: cores - 1, or \
           \\$(b,REPRO_JOBS)).")

let build_fault ~seed ~n ~loss ~crashes =
  let open Repro_engine in
  let fault = if loss > 0.0 then Fault.with_loss Fault.none ~p:loss else Fault.none in
  if crashes <= 0 then fault
  else begin
    let rng = Rng.substream ~seed ~index:0xdead in
    let victims = Rng.sample_distinct rng ~n ~k:(min crashes n) ~avoid:(-1) in
    Array.fold_left
      (fun f node -> Fault.with_crash f ~node ~round:(1 + Rng.int rng 5))
      fault victims
  end

let run_cmd =
  let run algo family n seed seeds loss crashes max_rounds completion growth jobs =
    if seeds < 1 then `Error (false, "--seeds must be at least 1")
    else begin
      let completion =
        if crashes > 0 && completion = Run.Strong then Run.Survivors_strong else completion
      in
      let spec_of seed =
        {
          Run.default_spec with
          Run.seed;
          fault = build_fault ~seed ~n ~loss ~crashes;
          completion;
          max_rounds;
          track_growth = growth && seeds = 1;
        }
      in
      let exec seed =
        let rng = Rng.substream ~seed ~index:0x70b0 in
        let topology = Generate.build family ~rng ~n in
        (topology, Run.exec_spec (spec_of seed) algo topology)
      in
      if seeds = 1 then begin
        let topology, result = exec seed in
        Printf.printf "algorithm        : %s\n" result.Run.algorithm;
        Printf.printf "topology         : %s (n=%d, m=%d)\n" (Generate.family_name family) n
          (Topology.edge_count topology);
        Printf.printf "seed             : %d\n" seed;
        Printf.printf "completed        : %b\n" result.Run.completed;
        Printf.printf "rounds           : %d\n" result.Run.rounds;
        Printf.printf "messages         : %d\n" result.Run.messages;
        Printf.printf "pointers         : %d\n" result.Run.pointers;
        Printf.printf "wire bytes       : %d (adaptive codec)\n" result.Run.bytes;
        Printf.printf "dropped          : %d\n" result.Run.dropped;
        Printf.printf "peak msgs/round  : %d\n" result.Run.max_round_messages;
        if growth then begin
          Printf.printf "mean knowledge size by round:\n";
          Array.iteri
            (fun i v -> Printf.printf "  round %3d: %10.1f\n" (i + 1) v)
            result.Run.mean_knowledge_series
        end;
        if result.Run.completed then `Ok ()
        else `Error (false, "did not complete within the round budget")
      end
      else begin
        match
          match jobs with
          | Some j -> Ok j
          | None -> ( try Ok (Pool.default_jobs ()) with Invalid_argument m -> Error m)
        with
        | Error msg -> `Error (false, msg)
        | Ok jobs ->
        let seed_list = List.init seeds (fun i -> seed + i) in
        let results = Pool.map ~jobs (fun seed -> (seed, exec seed)) seed_list in
        Printf.printf "algorithm        : %s\n" algo.Algorithm.name;
        Printf.printf "topology         : %s (n=%d)\n" (Generate.family_name family) n;
        Printf.printf "seeds            : %d..%d (%d replicates, jobs=%d)\n" seed
          (seed + seeds - 1) seeds jobs;
        List.iter
          (fun (seed, (_, r)) ->
            Printf.printf "  seed %-4d: rounds %-4d messages %-9d pointers %-11d bytes %d%s\n"
              seed r.Run.rounds r.Run.messages r.Run.pointers r.Run.bytes
              (if r.Run.completed then "" else "  [DNF]"))
          results;
        let runs = List.map (fun (_, (_, r)) -> r) results in
        let agg f = Stats.summarize_ints (List.map f runs) in
        let cell (s : Stats.summary) = Printf.sprintf "%.1f ± %.1f" s.Stats.mean s.Stats.stddev in
        Printf.printf "rounds           : %s\n" (cell (agg (fun r -> r.Run.rounds)));
        Printf.printf "messages         : %s\n" (cell (agg (fun r -> r.Run.messages)));
        Printf.printf "pointers         : %s\n" (cell (agg (fun r -> r.Run.pointers)));
        Printf.printf "wire bytes       : %s (adaptive codec)\n" (cell (agg (fun r -> r.Run.bytes)));
        let dnf = List.length (List.filter (fun r -> not r.Run.completed) runs) in
        if dnf = 0 then `Ok ()
        else
          `Error
            ( false,
              Printf.sprintf "%d of %d replicates did not complete within the round budget" dnf
                seeds )
      end
    end
  in
  let term =
    Term.(
      ret
        (const run $ algo_arg $ topology_arg $ n_arg $ seed_arg $ seeds_arg $ loss_arg
       $ crashes_arg $ max_rounds_arg $ completion_arg $ growth_arg $ jobs_arg))
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one discovery configuration.") term

let list_cmd =
  let list () =
    List.iter
      (fun (a : Algorithm.t) -> Printf.printf "%-14s %s\n" a.Algorithm.name a.Algorithm.description)
      Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the implemented algorithms.") Term.(const list $ const ())

let topo_cmd =
  let show family n seed =
    let rng = Rng.substream ~seed ~index:0x70b0 in
    let topology = Generate.build family ~rng ~n in
    let connected = Analyze.is_weakly_connected topology in
    Printf.printf "family        : %s\n" (Generate.family_name family);
    Printf.printf "nodes         : %d\n" (Topology.n topology);
    Printf.printf "edges         : %d\n" (Topology.edge_count topology);
    Printf.printf "weakly conn.  : %b\n" connected;
    if connected then begin
      let d = Analyze.weak_diameter_estimate ~rng topology in
      Printf.printf "diameter est. : %d\n" d
    end;
    let deg = Analyze.degree_stats topology in
    Printf.printf "out-degree    : mean %.1f, min %.0f, max %.0f\n" deg.Stats.mean deg.Stats.min
      deg.Stats.max
  in
  Cmd.v
    (Cmd.info "topo" ~doc:"Describe a generated topology.")
    Term.(const show $ topology_arg $ n_arg $ seed_arg)

let () =
  let doc = "Distributed resource discovery in sub-logarithmic time (PODC'15 reproduction)" in
  let info = Cmd.info "discovery" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ run_cmd; list_cmd; topo_cmd ]))
