(* discovery_cli — run a single resource-discovery configuration and
   report its cost measures.

   Examples:
     discovery_cli run --algo hm --topology kout:3 -n 4096
     discovery_cli run --algo name_dropper --topology path -n 1024 --seed 7
     discovery_cli run --algo "rand:push/f2" --topology seeds:16:2 -n 8192 --growth
     discovery_cli run --algo hm -n 4096 --seeds 10 --jobs 4
     discovery_cli list
     discovery_cli topo --topology clustered:8:3 -n 1024
*)

open Repro_util
open Repro_graph
open Repro_discovery
open Cmdliner

let topology_conv =
  let parse s = Generate.family_of_string s |> Result.map_error (fun e -> `Msg e) in
  let print ppf f = Format.pp_print_string ppf (Generate.family_name f) in
  Arg.conv (parse, print)

let algo_conv =
  let parse s = Registry.find s |> Result.map_error (fun e -> `Msg e) in
  let print ppf (a : Algorithm.t) = Format.pp_print_string ppf a.Algorithm.name in
  Arg.conv (parse, print)

let completion_conv =
  let parse = function
    | "strong" -> Ok Run.Strong
    | "survivors" -> Ok Run.Survivors_strong
    | "leader" -> Ok Run.Leader
    | "quiescent" -> Ok Run.Quiescent
    | s -> Error (`Msg (Printf.sprintf "unknown completion %S (strong|survivors|leader|quiescent)" s))
  in
  let print ppf c =
    Format.pp_print_string ppf
      (match c with
      | Run.Strong -> "strong"
      | Run.Survivors_strong -> "survivors"
      | Run.Leader -> "leader"
      | Run.Quiescent -> "quiescent")
  in
  Arg.conv (parse, print)

let n_arg =
  Arg.(value & opt int 1024 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of machines.")

let seed_arg = Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"Master random seed.")

let topology_arg =
  Arg.(
    value
    & opt topology_conv (Generate.K_out 3)
    & info [ "t"; "topology" ] ~docv:"FAMILY"
        ~doc:
          "Initial knowledge graph family: path, dpath, cycle, dcycle, star, instar, complete, \
           tree, grid, hypercube, lollipop, sorted_chain, kniesburges:W, kout:K, er:P, \
           clustered:C:K, seeds:S:F, ba:M, ws:K:B, geo:R.")

let algo_arg =
  Arg.(
    value
    & opt algo_conv Hm_gossip.algorithm
    & info [ "a"; "algo" ] ~docv:"ALGO" ~doc:("Algorithm: " ^ Registry.parse_doc ()))

let loss_arg =
  Arg.(value & opt float 0.0 & info [ "loss" ] ~docv:"P" ~doc:"Per-message drop probability.")

let crashes_arg =
  Arg.(
    value & opt int 0
    & info [ "crashes" ] ~docv:"K" ~doc:"Crash K random nodes during the first 5 rounds.")

let max_rounds_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-rounds" ] ~docv:"R" ~doc:"Round budget (default 4n + 64).")

let completion_arg =
  Arg.(
    value
    & opt completion_conv Run.Strong
    & info [ "completion" ] ~docv:"PRED" ~doc:"Completion predicate: strong, survivors, leader.")

let growth_arg =
  Arg.(value & flag & info [ "growth" ] ~doc:"Print the per-round mean knowledge-size series.")

let seeds_arg =
  Arg.(
    value & opt int 1
    & info [ "seeds" ] ~docv:"K"
        ~doc:
          "Replicate the run over K consecutive seeds (seed .. seed+K-1), sharded across \
           worker domains, and report per-seed results plus aggregate statistics.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains. With $(b,--seeds) K > 1: shard the K replicate runs (default: cores \
           - 1, or \\$(b,REPRO_JOBS)). With a single seed: shard the one run's nodes across N \
           domains (default: 1); any N produces a byte-identical trace and result.")

let fault_conv =
  let parse s = Repro_engine.Fault.of_string s |> Result.map_error (fun e -> `Msg e) in
  Arg.conv (parse, Repro_engine.Fault.pp)

let fault_arg =
  Arg.(
    value
    & opt fault_conv Repro_engine.Fault.none
    & info [ "fault" ] ~docv:"PLAN"
        ~doc:
          "Unified fault plan, as a comma-separated DSL: loss=P, delay=T, dup=P, reorder=P, \
           corrupt=P, cap=K (per-link messages per round; 0 = unlimited), \
           link=SRC>DST:key=value:..., wan=R1|R2:key=value:... (per-link profile on every \
           cross-region link), part=G1|G2@START..HEAL, crash=N@R, restart=N@R, join=N@R, \
           leave=N@R (graceful departure, service runtime only), fabricate=NODE@ID, audit=1. \
           Example: \
           loss=0.1,part=0-3|4-7@5..20,crash=5@8,restart=5@14. Example: \
           wan=0-3|4-7:delay=2:loss=0.1:cap=5. Composes with $(b,--loss) and \
           $(b,--crashes), which overlay the plan.")

(* --loss / --crashes predate the plan DSL; they overlay [base] so old
   invocations keep their exact semantics (including the crash-victim
   RNG substream). *)
let build_fault ?(base = Repro_engine.Fault.none) ~seed ~n ~loss ~crashes () =
  let open Repro_engine in
  let fault = if loss > 0.0 then Fault.with_loss base ~p:loss else base in
  if crashes <= 0 then fault
  else begin
    let rng = Rng.substream ~seed ~index:0xdead in
    let victims = Rng.sample_distinct rng ~n ~k:(min crashes n) ~avoid:(-1) in
    Array.fold_left
      (fun f node -> Fault.with_crash f ~node ~round:(1 + Rng.int rng 5))
      fault victims
  end

(* A plan that takes nodes down for good makes Strong completion
   unreachable; one whose every crash restarts does not. *)
let has_fatal_crashes (fault : Repro_engine.Fault.t) =
  let open Repro_engine in
  List.exists (fun (v, _) -> Fault.restart_round fault ~node:v = None) (Fault.crashed_nodes fault)

let run_cmd =
  let run algo family n seed seeds loss crashes plan max_rounds completion growth jobs =
    if seeds < 1 then `Error (false, "--seeds must be at least 1")
    else begin
      let completion =
        if (crashes > 0 || has_fatal_crashes plan) && completion = Run.Strong then
          Run.Survivors_strong
        else completion
      in
      let spec_of seed =
        {
          Run.default_spec with
          Run.seed;
          fault = build_fault ~base:plan ~seed ~n ~loss ~crashes ();
          completion;
          max_rounds;
          track_growth = growth && seeds = 1;
          (* single-seed: --jobs shards this run's nodes instead of
             sharding replicates *)
          jobs = (if seeds = 1 then Option.value jobs ~default:1 else 1);
        }
      in
      let exec seed =
        let rng = Rng.substream ~seed ~index:0x70b0 in
        let topology = Generate.build family ~rng ~n in
        (topology, Run.exec_spec (spec_of seed) algo topology)
      in
      if seeds = 1 then begin
        let topology, result = exec seed in
        Printf.printf "algorithm        : %s\n" result.Run.algorithm;
        Printf.printf "topology         : %s (n=%d, m=%d)\n" (Generate.family_name family) n
          (Topology.edge_count topology);
        Printf.printf "seed             : %d\n" seed;
        Printf.printf "completed        : %b\n" result.Run.completed;
        Printf.printf "rounds           : %d\n" result.Run.rounds;
        Printf.printf "messages         : %d\n" result.Run.messages;
        Printf.printf "pointers         : %d\n" result.Run.pointers;
        Printf.printf "wire bytes       : %d (adaptive codec)\n" result.Run.bytes;
        Printf.printf "dropped          : %d\n" result.Run.dropped;
        Printf.printf "peak msgs/round  : %d\n" result.Run.max_round_messages;
        if growth then begin
          Printf.printf "mean knowledge size by round:\n";
          Array.iteri
            (fun i v -> Printf.printf "  round %3d: %10.1f\n" (i + 1) v)
            result.Run.mean_knowledge_series
        end;
        if result.Run.completed then `Ok 0
        else begin
          prerr_endline "discovery: did not complete within the round budget";
          `Ok 1
        end
      end
      else begin
        match
          match jobs with
          | Some j -> Ok j
          | None -> ( try Ok (Pool.default_jobs ()) with Invalid_argument m -> Error m)
        with
        | Error msg -> `Error (false, msg)
        | Ok jobs ->
        let seed_list = List.init seeds (fun i -> seed + i) in
        let results = Pool.map ~jobs (fun seed -> (seed, exec seed)) seed_list in
        Printf.printf "algorithm        : %s\n" algo.Algorithm.name;
        Printf.printf "topology         : %s (n=%d)\n" (Generate.family_name family) n;
        Printf.printf "seeds            : %d..%d (%d replicates, jobs=%d)\n" seed
          (seed + seeds - 1) seeds jobs;
        List.iter
          (fun (seed, (_, r)) ->
            Printf.printf "  seed %-4d: rounds %-4d messages %-9d pointers %-11d bytes %d%s\n"
              seed r.Run.rounds r.Run.messages r.Run.pointers r.Run.bytes
              (if r.Run.completed then "" else "  [DNF]"))
          results;
        let runs = List.map (fun (_, (_, r)) -> r) results in
        let agg f = Stats.summarize_ints (List.map f runs) in
        let cell (s : Stats.summary) = Printf.sprintf "%.1f ± %.1f" s.Stats.mean s.Stats.stddev in
        Printf.printf "rounds           : %s\n" (cell (agg (fun r -> r.Run.rounds)));
        Printf.printf "messages         : %s\n" (cell (agg (fun r -> r.Run.messages)));
        Printf.printf "pointers         : %s\n" (cell (agg (fun r -> r.Run.pointers)));
        Printf.printf "wire bytes       : %s (adaptive codec)\n" (cell (agg (fun r -> r.Run.bytes)));
        let dnf = List.length (List.filter (fun r -> not r.Run.completed) runs) in
        if dnf = 0 then `Ok 0
        else begin
          Printf.eprintf "discovery: %d of %d replicates did not complete within the round budget\n"
            dnf seeds;
          `Ok 1
        end
      end
    end
  in
  let term =
    Term.(
      ret
        (const run $ algo_arg $ topology_arg $ n_arg $ seed_arg $ seeds_arg $ loss_arg
       $ crashes_arg $ fault_arg $ max_rounds_arg $ completion_arg $ growth_arg $ jobs_arg))
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one discovery configuration.") term

let list_cmd =
  let list () =
    List.iter
      (fun (a : Algorithm.t) -> Printf.printf "%-14s %s\n" a.Algorithm.name a.Algorithm.description)
      Registry.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List the implemented algorithms.") Term.(const list $ const ())

(* --- trace: emit the structured event stream of one run as JSONL --- *)

let trace_cmd =
  let trace algo family n seed loss crashes plan max_rounds completion asynchronous check output
      jobs =
    let open Repro_engine in
    let completion =
      if (crashes > 0 || has_fatal_crashes plan) && completion = Run.Strong then
        Run.Survivors_strong
      else completion
    in
    let fault = build_fault ~base:plan ~seed ~n ~loss ~crashes () in
    let topology = Generate.build family ~rng:(Rng.substream ~seed ~index:0x70b0) ~n in
    let oc, close =
      match output with
      | None -> (stdout, fun () -> flush stdout)
      | Some file ->
        let oc = open_out file in
        (oc, fun () -> close_out oc)
    in
    let invariants =
      (* delayed links carry messages across round boundaries; the
         checker must not flag those as lost at the boundary *)
      if check then Some (Trace.Invariants.create ~allow_inflight:(Fault.has_delays fault) ())
      else None
    in
    let sink =
      match invariants with
      | None -> Trace.jsonl oc
      | Some inv -> Trace.tee (Trace.jsonl oc) (Trace.Invariants.sink inv)
    in
    (* the online checker raises mid-run (e.g. a content audit catching
       a fabricated id), so the execution itself is under the handler *)
    match
      if asynchronous then
        (Run_async.exec_spec
           { Run_async.default_spec with Run_async.seed; fault; completion; trace = sink }
           algo topology)
          .Run_async.metrics
      else
        (Run.exec_spec
           {
             Run.default_spec with
             Run.seed;
             fault;
             completion;
             max_rounds;
             trace = sink;
             jobs = Option.value jobs ~default:1;
           }
           algo topology)
          .Run.metrics
    with
    | exception Trace.Invariants.Violation msg ->
      close ();
      Printf.eprintf "discovery: invariant violation: %s\n" msg;
      `Ok 1
    | metrics -> (
      close ();
      match invariants with
      | None -> `Ok 0
      | Some inv -> (
        match Trace.Invariants.final_check inv metrics with
        | () ->
          Printf.eprintf "trace invariants ok (%d events)\n" (Trace.Invariants.events_seen inv);
          `Ok 0
        | exception Trace.Invariants.Violation msg ->
          Printf.eprintf "discovery: invariant violation: %s\n" msg;
          `Ok 1))
  in
  let async_arg =
    Arg.(
      value & flag
      & info [ "async" ]
          ~doc:
            "Trace an asynchronous (event-driven) execution instead of the synchronous \
             round-based one.")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Also run the online invariant checker over the emitted events (message \
             conservation, liveness discipline, monotonicity, metrics agreement).")
  in
  let output_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the JSONL trace to $(docv) (default: stdout).")
  in
  let term =
    Term.(
      ret
        (const trace $ algo_arg $ topology_arg $ n_arg $ seed_arg $ loss_arg $ crashes_arg
       $ fault_arg $ max_rounds_arg $ completion_arg $ async_arg $ check_arg $ output_arg
       $ jobs_arg))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Emit the structured event trace (JSONL) of one run. A run is a pure function of \
          (algorithm, topology, config, seed), so two invocations with the same arguments \
          produce byte-identical traces — compare with $(b,trace-diff).")
    term

(* --- trace-diff: first divergence between two JSONL traces --- *)

let trace_diff_cmd =
  let read_lines file =
    let ic = open_in file in
    let rec go acc =
      match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file ->
        close_in ic;
        List.rev acc
    in
    go []
  in
  let diff file_a file_b =
    match (read_lines file_a, read_lines file_b) with
    | exception Sys_error msg -> `Error (false, msg)
    | lines_a, lines_b ->
      let width = max (String.length file_a) (String.length file_b) in
      let pad f = f ^ String.make (width - String.length f) ' ' in
      let differ () =
        flush stdout;
        prerr_endline "discovery: traces differ";
        (* divergence is an operational failure (exit 1), distinct from
           usage errors (exit 2) *)
        `Ok 1
      in
      let rec go i a b =
        match (a, b) with
        | [], [] ->
          Printf.printf "traces identical (%d events)\n" i;
          `Ok 0
        | la :: _, lb :: _ when la <> lb ->
          Printf.printf "traces diverge at event %d:\n  %s: %s\n  %s: %s\n" (i + 1) (pad file_a)
            la (pad file_b) lb;
          differ ()
        | _ :: a, _ :: b -> go (i + 1) a b
        | [], lb :: _ ->
          Printf.printf "%s ends at event %d; %s continues:\n  %s\n" file_a i file_b lb;
          differ ()
        | la :: _, [] ->
          Printf.printf "%s ends at event %d; %s continues:\n  %s\n" file_b i file_a la;
          differ ()
      in
      go 0 lines_a lines_b
  in
  let file p docv =
    Arg.(required & pos p (some non_dir_file) None & info [] ~docv ~doc:"JSONL trace file.")
  in
  let term = Term.(ret (const diff $ file 0 "TRACE_A" $ file 1 "TRACE_B")) in
  Cmd.v
    (Cmd.info "trace-diff"
       ~doc:
         "Compare two JSONL event traces and report the first divergent event — certifies \
          that two runs (different machines, job counts, builds) executed identically.")
    term

(* --- cluster: run the algorithm as live processes over sockets --- *)

let cluster_cmd =
  let open Repro_net in
  let backend_conv =
    let parse s = Backend.of_string s |> Result.map_error (fun e -> `Msg e) in
    Arg.conv (parse, fun ppf b -> Format.pp_print_string ppf (Backend.to_string b))
  in
  let encoding_conv =
    let parse s =
      match List.find_opt (fun e -> Wire.encoding_name e = s) Wire.all_encodings with
      | Some e -> Ok e
      | None -> Error (`Msg (Printf.sprintf "unknown encoding %S (raw32|varint|bitmap|adaptive)" s))
    in
    Arg.conv (parse, fun ppf e -> Format.pp_print_string ppf (Wire.encoding_name e))
  in
  let backend_arg =
    Arg.(
      value
      & opt backend_conv (Backend.Process Backend.Uds)
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:
            "Node runtime: $(b,loopback) (in-process, deterministic, trace-identical to the \
             async simulator), $(b,uds) (one process per node over unix-domain sockets), \
             $(b,tcp) (one process per node over 127.0.0.1) or $(b,mux) (every node a live \
             protocol instance multiplexed in this process — thousands of nodes, still \
             deterministic).")
  in
  let tick_arg =
    Arg.(
      value
      & opt float Node.default_tick_period
      & info [ "tick-period" ] ~docv:"SECONDS" ~doc:"Seconds between algorithm activations.")
  in
  let timeout_arg =
    Arg.(
      value & opt float 30.0
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Wall-clock budget; exceeding it counts as non-convergence.")
  in
  let encoding_arg =
    Arg.(
      value
      & opt encoding_conv Wire.Adaptive
      & info [ "encoding" ] ~docv:"CODEC" ~doc:"Wire codec: raw32, varint, bitmap or adaptive.")
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Write the merged, time-ordered JSONL event trace of the whole cluster to $(docv).")
  in
  let no_check_arg =
    Arg.(
      value & flag
      & info [ "no-check" ]
          ~doc:"Skip the online invariant checker over the merged event stream.")
  in
  let kill_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "kill" ] ~docv:"NODE"
          ~doc:
            "Sabotage: SIGKILL node $(docv) right after spawn. The run must then report the \
             node as crashed and fail to converge (exit 1) — the failure-path drill.")
  in
  let dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"UDS socket directory (default: a fresh directory under /tmp, removed afterwards).")
  in
  let cluster algo family n seed backend tick_period timeout encoding trace_out no_check kill
      fault dir =
    if n < 1 then `Error (false, "-n must be at least 1")
    else begin
      let oc = Option.map open_out trace_out in
      let spec =
        {
          (Cluster.default_spec algo) with
          Cluster.n;
          family;
          seed;
          backend;
          tick_period;
          timeout;
          encoding;
          dir;
          trace = (match oc with Some oc -> Repro_engine.Trace.jsonl oc | None -> Repro_engine.Trace.null);
          check_invariants = not no_check;
          kill_node = kill;
          fault;
        }
      in
      match Cluster.run spec with
      | result ->
        Option.iter close_out oc;
        print_endline (Cluster.result_to_json result);
        let ok =
          result.Cluster.converged
          && (match result.Cluster.invariants with Cluster.Failed _ -> false | _ -> true)
        in
        if not ok then
          Printf.eprintf "discovery: cluster did not converge cleanly (%s)\n"
            (match result.Cluster.invariants with
            | Cluster.Failed msg -> "invariant violation: " ^ msg
            | _ when result.Cluster.crashed <> [] ->
              Printf.sprintf "%d node(s) crashed" (List.length result.Cluster.crashed)
            | _ -> "not all nodes completed in time");
        `Ok (if ok then 0 else 1)
      | exception Invalid_argument msg ->
        Option.iter close_out oc;
        `Error (false, msg)
    end
  in
  let term =
    Term.(
      ret
        (const cluster $ algo_arg $ topology_arg $ n_arg $ seed_arg $ backend_arg $ tick_arg
       $ timeout_arg $ encoding_arg $ trace_out_arg $ no_check_arg $ kill_arg $ fault_arg
       $ dir_arg))
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:
         "Run one discovery configuration as a live cluster: n node processes over real \
          sockets, convergence verified against the same invariant checker the simulators \
          use, JSON report on stdout. Exit 0 on clean convergence, 1 otherwise.")
    term

(* --- chaos: seeded soak of randomized fault plans over live clusters --- *)

let chaos_cmd =
  let open Repro_net in
  let backend_conv =
    let parse s =
      match Backend.of_string s with
      | Ok Backend.Loopback -> Error (`Msg "chaos needs a live backend (uds|tcp|mux)")
      | Ok b -> Ok b
      | Error e -> Error (`Msg e)
    in
    Arg.conv (parse, fun ppf b -> Format.pp_print_string ppf (Backend.to_string b))
  in
  let backend_arg =
    Arg.(
      value
      & opt backend_conv (Backend.Process Backend.Uds)
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:"Live backend for the trial clusters: $(b,uds), $(b,tcp) or $(b,mux).")
  in
  let trials_arg =
    Arg.(
      value & opt int 10
      & info [ "trials" ] ~docv:"K" ~doc:"Number of seeded trials; trial i uses seed + i.")
  in
  let loss_max_arg =
    Arg.(
      value & opt float 0.2
      & info [ "loss-max" ] ~docv:"P"
          ~doc:"Upper bound on each trial's randomized base loss rate.")
  in
  let tick_arg =
    Arg.(
      value
      & opt float Node.default_tick_period
      & info [ "tick-period" ] ~docv:"SECONDS" ~doc:"Seconds between algorithm activations.")
  in
  let timeout_arg =
    Arg.(
      value & opt float 10.0
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Per-trial wall-clock budget; exceeding it fails the trial.")
  in
  let quiet_arg =
    Arg.(
      value & flag
      & info [ "quiet" ] ~doc:"Suppress the per-trial progress lines on stderr.")
  in
  let dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"UDS socket directory (default: a fresh directory under /tmp, removed afterwards).")
  in
  let chaos algo n seed backend trials loss_max tick_period timeout quiet dir =
    let spec =
      {
        (Chaos.default_spec algo) with
        Chaos.n;
        trials;
        seed;
        backend;
        tick_period;
        timeout;
        loss_max;
        dir;
      }
    in
    let progress (t : Chaos.trial) =
      if not quiet then
        Printf.eprintf "chaos: trial %d/%d seed=%d %s: %s\n%!" (t.Chaos.index + 1) trials
          t.Chaos.seed
          (Repro_engine.Fault.to_string t.Chaos.plan)
          (if t.Chaos.passed then "pass" else "FAIL")
    in
    match Chaos.run ~progress spec with
    | report ->
      print_endline (Chaos.report_to_json report);
      if Chaos.all_passed report then `Ok 0
      else begin
        Printf.eprintf "discovery: chaos soak failed (%d of %d trials)\n"
          (List.length report.Chaos.trials - report.Chaos.passed)
          (List.length report.Chaos.trials);
        `Ok 1
      end
    | exception Invalid_argument msg -> `Error (false, msg)
  in
  let n_arg =
    Arg.(value & opt int 8 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of machines per trial.")
  in
  let term =
    Term.(
      ret
        (const chaos $ algo_arg $ n_arg $ seed_arg $ backend_arg $ trials_arg $ loss_max_arg
       $ tick_arg $ timeout_arg $ quiet_arg $ dir_arg))
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Soak-test the live network under randomized — but fully seeded — fault plans: each \
          trial runs a cluster under per-link loss, duplication, reordering, corruption, a \
          healing partition and a crash-with-restart, then verifies convergence with the \
          online invariant checker. JSON soak report on stdout; exit 0 only if every trial \
          passes. Replay a failing trial alone by passing its reported seed with \
          $(b,--trials 1).")
    term

(* --- chaos-matrix: plan families × algorithms × topologies ------------ *)

let chaos_matrix_cmd =
  let open Repro_net in
  let backend_conv =
    let parse s =
      match Backend.of_string s with
      | Ok Backend.Loopback -> Error (`Msg "chaos-matrix needs a live backend (uds|tcp|mux)")
      | Ok b -> Ok b
      | Error e -> Error (`Msg e)
    in
    Arg.conv (parse, fun ppf b -> Format.pp_print_string ppf (Backend.to_string b))
  in
  let backend_arg =
    Arg.(
      value & opt backend_conv Backend.Mux
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:
            "Live backend for the cell clusters: $(b,uds), $(b,tcp) or $(b,mux). The default \
             mux backend runs on a virtual clock, which makes the summary byte-reproducible \
             and therefore safe to diff against a pinned baseline.")
  in
  let n_arg =
    Arg.(value & opt int 8 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of machines per cell.")
  in
  let trials_arg =
    Arg.(
      value & opt int 3
      & info [ "trials" ] ~docv:"K"
          ~doc:"Seeded trials per cell; trial i uses seed + i for topology and plan.")
  in
  let timeout_arg =
    Arg.(
      value & opt float 10.0
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Per-trial wall-clock budget; exceeding it fails the trial.")
  in
  let loss_max_arg =
    Arg.(
      value & opt float 0.2
      & info [ "loss-max" ] ~docv:"P"
          ~doc:"Upper bound on the links plan family's randomized base loss rate.")
  in
  let algos_arg =
    Arg.(
      value
      & opt (list algo_conv)
          [ Hm_gossip.algorithm; Rand_gossip.algorithm; Name_dropper.algorithm ]
      & info [ "algos" ] ~docv:"A1,A2,..." ~doc:"Algorithms to sweep (comma-separated).")
  in
  let topologies_arg =
    Arg.(
      value
      & opt (list topology_conv) (Generate.adversarial_families @ [ Generate.K_out 3 ])
      & info [ "topologies" ] ~docv:"T1,T2,..."
          ~doc:
            "Topology families to sweep (comma-separated; default: the named adversarial \
             families plus kout:3).")
  in
  let plans_arg =
    Arg.(
      value
      & opt (list string) Chaos.plan_families
      & info [ "plans" ] ~docv:"P1,P2,..."
          ~doc:
            (Printf.sprintf "Plan families to sweep (comma-separated; default: %s)."
               (String.concat ", " Chaos.plan_families)))
  in
  let baseline_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Compare the summary against a pinned baseline file. A mismatch prints the \
             differing lines and exits 1; when the baseline matches, its pass/fail counts are \
             taken as the expected state and the exit code is 0.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Also write the summary to FILE (e.g. to regenerate the baseline).")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress the per-cell progress lines on stderr.")
  in
  let matrix algos topologies plans n seed backend trials timeout loss_max baseline out quiet =
    let progress (c : Chaos.cell) =
      if not quiet then
        Printf.eprintf "chaos-matrix: %s/%s/%s: %d/%d\n%!" c.Chaos.cell_algo c.Chaos.cell_topology
          c.Chaos.cell_plan c.Chaos.cell_passed c.Chaos.cell_trials
    in
    match
      Chaos.matrix ~progress ~algos ~families:topologies ~plans ~n ~trials ~seed ~backend ~timeout
        ~loss_max ()
    with
    | exception Invalid_argument msg -> `Error (false, msg)
    | cells ->
      let summary = Chaos.matrix_to_json cells in
      print_string summary;
      Option.iter
        (fun path ->
          let oc = open_out path in
          output_string oc summary;
          close_out oc)
        out;
      (match baseline with
      | None ->
        let failed = List.filter (fun c -> c.Chaos.cell_passed < c.Chaos.cell_trials) cells in
        if failed = [] then `Ok 0
        else begin
          Printf.eprintf "discovery: chaos matrix failed (%d of %d cells)\n" (List.length failed)
            (List.length cells);
          `Ok 1
        end
      | Some path ->
        let expected =
          let ic = open_in_bin path in
          let len = in_channel_length ic in
          let s = really_input_string ic len in
          close_in ic;
          s
        in
        if String.equal expected summary then `Ok 0
        else begin
          let lines s = String.split_on_char '\n' s in
          let exp = Array.of_list (lines expected) and got = Array.of_list (lines summary) in
          Printf.eprintf "discovery: chaos matrix diverges from baseline %s\n" path;
          for i = 0 to max (Array.length exp) (Array.length got) - 1 do
            let e = if i < Array.length exp then exp.(i) else "<missing>" in
            let g = if i < Array.length got then got.(i) else "<missing>" in
            if not (String.equal e g) then
              Printf.eprintf "  line %d:\n  - %s\n  + %s\n" (i + 1) e g
          done;
          `Ok 1
        end)
  in
  let term =
    Term.(
      ret
        (const matrix $ algos_arg $ topologies_arg $ plans_arg $ n_arg $ seed_arg $ backend_arg
       $ trials_arg $ timeout_arg $ loss_max_arg $ baseline_arg $ out_arg $ quiet_arg))
  in
  Cmd.v
    (Cmd.info "chaos-matrix"
       ~doc:
         "Sweep a grid of algorithms × topologies × named fault-plan families over live \
          clusters and reduce every cell to a deterministic pass count. Plan families isolate \
          one fault dimension each: base link noise, a healing partition, a crash with \
          restart, and a two-region WAN profile. On the default mux backend the one-line-per- \
          cell JSON summary is byte-reproducible, so CI diffs it against \
          $(b,ci/chaos-matrix-baseline.json); regenerate the baseline with $(b,--out).")
    term

(* --- soak: the continuous discovery service under churn --------------- *)

let soak_cmd =
  let open Repro_service in
  let soak n cap ticks seed churn min_live cooldown plan lag_bound full_sync backend indirect_k
      no_lifeguard trace_out quiet =
    if n < 2 then `Error (false, "--n must be at least 2")
    else begin
      let cap = if cap = 0 then n + max 16 (n / 4) else cap in
      if cap < n then `Error (false, "--cap must be at least n")
      else if ticks < 1 then `Error (false, "--ticks must be positive")
      else if indirect_k < 0 then `Error (false, "--indirect-k must be >= 0")
      else begin
        let bound =
          if lag_bound > 0.0 then lag_bound else Service.default_lag_bound ~cap
        in
        let cooldown = if cooldown < 0 then int_of_float bound + 16 else cooldown in
        let churn =
          if churn <= 0.0 then None
          else
            Some
              {
                Service.rate = churn;
                min_live = (if min_live = 0 then max 2 (n / 2) else min_live);
                until = max 0 (ticks - cooldown);
              }
        in
        let oc = Option.map open_out trace_out in
        let trace =
          match oc with None -> Repro_engine.Trace.null | Some oc -> Repro_engine.Trace.jsonl oc
        in
        let cfg =
          {
            Service.n;
            cap;
            seed;
            ticks;
            churn;
            fault = plan;
            lag_bound = Some bound;
            full_sync = (if full_sync then Some true else None);
            backend;
            indirect_k;
            lifeguard = not no_lifeguard;
            trace;
          }
        in
        let finish code =
          Option.iter close_out oc;
          `Ok code
        in
        match Service.run cfg with
        | stats ->
          print_string (Service.stats_to_json stats);
          print_newline ();
          let open_epochs = stats.Service.epochs - stats.Service.epochs_closed in
          if not quiet then
            if open_epochs = 0 then
              Printf.eprintf
                "discovery soak: %d ticks, %d membership changes (%d joins, %d leaves, %d \
                 crashes), all epochs converged (max lag %.1f ticks, bound %.0f)\n"
                stats.Service.ticks_run stats.Service.epochs stats.Service.joins
                stats.Service.leaves stats.Service.crashes stats.Service.max_lag bound
            else
              Printf.eprintf
                "discovery soak: %d ticks, %d membership changes, %d epoch(s) still settling \
                 at the end of the run (no deadline missed; extend --ticks or --cooldown)\n"
                stats.Service.ticks_run stats.Service.epochs open_epochs;
          finish (if open_epochs = 0 then 0 else 1)
        | exception Repro_engine.Trace.Lag.Violation msg ->
          Printf.eprintf "discovery soak: INVARIANT VIOLATION: %s\n" msg;
          finish 1
      end
    end
  in
  let n_arg =
    Arg.(value & opt int 256 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Founding members.")
  in
  let cap_arg =
    Arg.(
      value & opt int 0
      & info [ "cap" ] ~docv:"CAP"
          ~doc:
            "Id universe: joiners and restarted members draw from ids N..CAP-1 and the retired \
             pool. Default: N + max(16, N/4).")
  in
  let ticks_arg =
    Arg.(value & opt int 5000 & info [ "ticks" ] ~docv:"T" ~doc:"Virtual ticks to run.")
  in
  let churn_arg =
    Arg.(
      value & opt float 0.01
      & info [ "churn" ] ~docv:"RATE"
          ~doc:
            "Expected membership events per tick: joins at RATE/2, graceful leaves and crashes \
             at RATE/4 each. 0 disables the churn generator (scheduled $(b,--fault) churn still \
             applies).")
  in
  let min_live_arg =
    Arg.(
      value & opt int 0
      & info [ "min-live" ] ~docv:"K"
          ~doc:"Never leave/crash below K live members (default N/2).")
  in
  let cooldown_arg =
    Arg.(
      value & opt int (-1)
      & info [ "cooldown" ] ~docv:"T"
          ~doc:
            "Churn-free ticks at the end of the run, so every epoch's convergence deadline \
             falls inside it (default: lag bound + 16).")
  in
  let lag_bound_arg =
    Arg.(
      value & opt float 0.0
      & info [ "lag-bound" ] ~docv:"TICKS"
          ~doc:
            "Convergence-lag bound: every live member must match the true membership within \
             this many ticks of each change. Default: max(64, 4·log2(CAP)²) — the polylog \
             envelope of the paper's re-discovery cost.")
  in
  let full_sync_arg =
    Arg.(
      value & flag
      & info [ "full-sync" ]
          ~doc:
            "Force the periodic full-state anti-entropy backstop on (default: enabled exactly \
             when an update could die in flight — the fault plan can lose messages, or \
             membership can change at all).")
  in
  let backend_arg =
    let service_backend_conv =
      let parse s =
        match Repro_net.Backend.of_string s with
        | Ok (Repro_net.Backend.Loopback | Repro_net.Backend.Mux) as ok -> ok
        | Ok (Repro_net.Backend.Process _) ->
          Error "the service multiplexes members into one process: use loopback or mux"
        | Error _ as e -> e
      in
      Arg.conv
        ( (fun s -> parse s |> Result.map_error (fun e -> `Msg e)),
          fun ppf b -> Format.pp_print_string ppf (Repro_net.Backend.to_string b) )
    in
    Arg.(
      value
      & opt (some service_backend_conv) None
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:
            "Member runtime: $(b,loopback) (default; members exchange wire-encoded payloads \
             directly) or $(b,mux) (each member hosted inside a real node core — envelope \
             framing, go-back-N retransmission and the seeded fault shim on every hop).")
  in
  let indirect_k_arg =
    Arg.(
      value & opt int 2
      & info [ "indirect-k" ] ~docv:"K"
          ~doc:
            "Intermediaries asked to probe on our behalf before a silent peer is suspected; 0 \
             disables the indirect round (a direct-probe timeout suspects immediately).")
  in
  let no_lifeguard_arg =
    Arg.(
      value & flag
      & info [ "no-lifeguard" ]
          ~doc:
            "Disable local-health timeout scaling (by default a member whose own probes fail \
             broadly widens its liveness timeouts instead of spraying down verdicts).")
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE" ~doc:"Write the JSONL event trace to $(docv).")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress the summary line on stderr.")
  in
  let term =
    Term.(
      ret
        (const soak $ n_arg $ cap_arg $ ticks_arg $ seed_arg $ churn_arg $ min_live_arg
       $ cooldown_arg $ fault_arg $ lag_bound_arg $ full_sync_arg $ backend_arg
       $ indirect_k_arg $ no_lifeguard_arg $ trace_out_arg $ quiet_arg))
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Run discovery as a continuous service: a multiplexed fleet on a virtual clock under \
          seeded churn (joins bootstrapping from live contacts, graceful leaves, crashes and \
          restarts), with SWIM-style liveness probing and versioned anti-entropy deltas. The \
          online convergence-lag invariant requires every live member's view to match the \
          true membership within the bound after each change. One-line JSON report on stdout, \
          byte-reproducible for a given seed; exit 0 only when every epoch converged in time.")
    term

let topo_cmd =
  let show family n seed =
    let rng = Rng.substream ~seed ~index:0x70b0 in
    let topology = Generate.build family ~rng ~n in
    let connected = Analyze.is_weakly_connected topology in
    Printf.printf "family        : %s\n" (Generate.family_name family);
    Printf.printf "nodes         : %d\n" (Topology.n topology);
    Printf.printf "edges         : %d\n" (Topology.edge_count topology);
    Printf.printf "weakly conn.  : %b\n" connected;
    if connected then begin
      let d = Analyze.weak_diameter_estimate ~rng topology in
      Printf.printf "diameter est. : %d\n" d
    end;
    let deg = Analyze.degree_stats topology in
    Printf.printf "out-degree    : mean %.1f, min %.0f, max %.0f\n" deg.Stats.mean deg.Stats.min
      deg.Stats.max;
    0
  in
  Cmd.v
    (Cmd.info "topo" ~doc:"Describe a generated topology.")
    Term.(const show $ topology_arg $ n_arg $ seed_arg)

(* Exit-code discipline: 0 success, 1 operational failure (divergent
   traces, non-convergence, DNF), 2 usage errors, 125 unexpected
   exceptions. Subcommands return their code; cmdliner-level parse and
   term errors are usage errors. *)
let () =
  let doc = "Distributed resource discovery in sub-logarithmic time (PODC'15 reproduction)" in
  let info = Cmd.info "discovery" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [
        run_cmd; list_cmd; topo_cmd; trace_cmd; trace_diff_cmd; cluster_cmd; chaos_cmd;
        chaos_matrix_cmd; soak_cmd;
      ]
  in
  exit
    (match Cmd.eval_value group with
    | Ok (`Ok code) -> code
    | Ok `Help | Ok `Version -> 0
    | Error (`Parse | `Term) -> 2
    | Error `Exn -> 125)
