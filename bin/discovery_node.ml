(* discovery_node — one live discovery process.

   Every node of a deployment is started with the SAME --peers address
   table (the static name service: index in the table = node id) and the
   SAME --seed (labels are a pure function of (seed, n), so all nodes
   agree on the label permutation). A node identifies itself by its
   --listen address, which must appear in the table.

   Example (3 nodes over unix-domain sockets, run in 3 shells):

     discovery_node --listen /tmp/d/node-0.sock \
       --peers /tmp/d/node-0.sock,/tmp/d/node-1.sock,/tmp/d/node-2.sock \
       --algo hm --seed 1

   The process exits once its knowledge is complete and the link has
   been idle for --idle-timeout seconds; exit status 0 means it learned
   all n identifiers. *)

open Repro_discovery
open Repro_net
open Cmdliner

let algo_conv =
  let parse s = Registry.find s |> Result.map_error (fun e -> `Msg e) in
  let print ppf (a : Algorithm.t) = Format.pp_print_string ppf a.Algorithm.name in
  Arg.conv (parse, print)

let encoding_conv =
  let parse s =
    match List.find_opt (fun e -> Wire.encoding_name e = s) Wire.all_encodings with
    | Some e -> Ok e
    | None -> Error (`Msg (Printf.sprintf "unknown encoding %S (raw32|varint|bitmap|adaptive)" s))
  in
  Arg.conv (parse, fun ppf e -> Format.pp_print_string ppf (Wire.encoding_name e))

let listen_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "listen" ] ~docv:"ADDR"
        ~doc:"Our own endpoint: a unix-domain socket path, PORT, or HOST:PORT.")

let peers_arg =
  Arg.(
    value
    & opt (some (list ~sep:',' string)) None
    & info [ "peers" ] ~docv:"ADDR,..."
        ~doc:
          "The full deployment address table, identical on every node; position in the list is \
           the node id, and $(b,--listen) must appear in it.")

let peers_file_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "peers-file" ] ~docv:"FILE"
        ~doc:
          "Read the address table from $(docv) instead of $(b,--peers): one entry per line \
           (socket path, PORT, or HOST:PORT), blank lines and #-comments ignored.")

let algo_arg =
  Arg.(
    value
    & opt algo_conv Hm_gossip.algorithm
    & info [ "a"; "algo" ] ~docv:"ALGO" ~doc:("Algorithm: " ^ Registry.parse_doc ()))

let seed_arg =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"SEED" ~doc:"Deployment seed (identical on every node).")

let neighbors_arg =
  Arg.(
    value
    & opt (some (list ~sep:',' int)) None
    & info [ "neighbors" ] ~docv:"ID,..."
        ~doc:
          "Initial knowledge: node ids we start out knowing (default: ring neighbours \
           id±1 mod n).")

let tick_arg =
  Arg.(
    value
    & opt float Node.default_tick_period
    & info [ "tick-period" ] ~docv:"SECONDS" ~doc:"Seconds between algorithm activations.")

let idle_arg =
  Arg.(
    value
    & opt float Node.default_idle_timeout
    & info [ "idle-timeout" ] ~docv:"SECONDS"
        ~doc:"Exit this long after knowledge is complete and the link has gone quiet.")

let max_ticks_arg =
  Arg.(
    value & opt int 10_000
    & info [ "max-ticks" ] ~docv:"K" ~doc:"Give up after this many activations.")

let encoding_arg =
  Arg.(
    value
    & opt encoding_conv Wire.Adaptive
    & info [ "encoding" ] ~docv:"CODEC" ~doc:"Wire codec: raw32, varint, bitmap or adaptive.")

let fault_conv =
  let parse s = Repro_engine.Fault.of_string s |> Result.map_error (fun e -> `Msg e) in
  Arg.conv (parse, Repro_engine.Fault.pp)

let fault_arg =
  Arg.(
    value
    & opt fault_conv Repro_engine.Fault.none
    & info [ "fault" ] ~docv:"PLAN"
        ~doc:
          "Fault plan applied to this node's outgoing frames (identical on every node for a \
           meaningful experiment), e.g. loss=0.1 or loss=0.05,delay=2.")

let announce_arg =
  Arg.(
    value & flag
    & info [ "announce" ]
        ~doc:
          "Greet the initial neighbours with a hello frame on startup; peers answer with \
           their full identifier set. Use when (re)joining an already-running deployment.")

let fleet_halt_arg =
  Arg.(
    value & flag
    & info [ "fleet-halt" ]
        ~doc:
          "Gossip completion across the fleet and exit once every node is known to be done, \
           instead of exiting on the local idle timeout. All nodes of the deployment must \
           agree on this flag.")

let main listen peers peers_file algo seed neighbors tick_period idle_timeout max_ticks encoding
    fault announce fleet_halt =
  let table =
    match (peers, peers_file) with
    | Some _, Some _ -> Error "--peers and --peers-file are mutually exclusive"
    | Some entries, None -> Addr_table.of_entries entries
    | None, Some file -> Addr_table.load file
    | None, None -> Error "one of --peers or --peers-file is required"
  in
  match table with
  | Error msg -> `Error (false, msg)
  | Ok addrs -> (
    let n = Array.length addrs in
    match Addr_table.index_of addrs listen with
    | None -> `Error (false, Printf.sprintf "--listen %S does not appear in the address table" listen)
    | Some node -> (
      let neighbors =
        match neighbors with
        | Some ids -> Array.of_list ids
        | None ->
          if n = 1 then [||]
          else Array.of_list (List.sort_uniq compare [ (node + 1) mod n; (node + n - 1) mod n ])
      in
      match Array.exists (fun v -> v < 0 || v >= n) neighbors with
      | true -> `Error (false, "--neighbors: node id out of range")
      | false ->
        let report =
          Node.run
            {
              Node.node;
              n;
              algo;
              seed;
              neighbors;
              scheme = Addr_table.scheme addrs;
              listen_fd = None;
              control_fd = None;
              epoch = Unix.gettimeofday ();
              tick_period;
              idle_timeout;
              max_ticks;
              connect_retries = Node.default_connect_retries;
              backoff = Node.default_backoff;
              backoff_cap = Node.default_backoff_cap;
              rto = Node.default_rto;
              fault;
              announce;
              encoding;
              fleet_halt;
            }
        in
        let f = report.Node.final in
        let completed = f.Control.complete_tick <> None in
        Printf.printf
          {|{"node":%d,"n":%d,"algorithm":"%s","seed":%d,"completed":%b,"complete_tick":%s,"ticks":%d,"sent":%d,"delivered":%d,"dropped":%d,"decode_errors":%d,"retransmits":%d,"corrupt_frames":%d}|}
          node n algo.Algorithm.name seed completed
          (match f.Control.complete_tick with Some t -> string_of_int t | None -> "null")
          f.Control.ticks f.Control.sent f.Control.delivered f.Control.dropped
          f.Control.decode_errors f.Control.retransmits f.Control.corrupt_frames;
        print_newline ();
        `Ok (if completed then 0 else 1)))

let () =
  let term =
    Term.(
      ret
        (const main $ listen_arg $ peers_arg $ peers_file_arg $ algo_arg $ seed_arg
       $ neighbors_arg $ tick_arg $ idle_arg $ max_ticks_arg $ encoding_arg $ fault_arg
       $ announce_arg $ fleet_halt_arg))
  in
  let info =
    Cmd.info "discovery_node" ~version:"1.0.0"
      ~doc:"Run one resource-discovery node as a live process over sockets."
  in
  exit
    (match Cmd.eval_value (Cmd.v info term) with
    | Ok (`Ok code) -> code
    | Ok `Help | Ok `Version -> 0
    | Error (`Parse | `Term) -> 2
    | Error `Exn -> 125)
