(* experiments — regenerate every table and figure of the reproduction.

   Examples:
     experiments                      # full suite into results/
     experiments --quick              # shrunk sizes, for smoke tests
     experiments --only T1 --only F1  # a selection
     experiments --jobs 8             # shard runs over 8 worker domains
     experiments --list
*)

open Cmdliner

let only_arg =
  Arg.(
    value & opt_all string []
    & info [ "only" ] ~docv:"ID" ~doc:"Run only this experiment (repeatable).")

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Shrink sizes and seeds for a fast smoke run.")

let list_arg = Arg.(value & flag & info [ "list" ] ~doc:"List experiment ids and exit.")

let results_arg =
  Arg.(
    value & opt string "results"
    & info [ "results-dir" ] ~docv:"DIR" ~doc:"Where to write report.md and CSV data.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for sharding independent runs (default: cores - 1, or \
           \\$(b,REPRO_JOBS)). Output is byte-identical for every value.")

let main only quick list results_dir jobs =
  if list then begin
    List.iter
      (fun (e : Repro_experiments.Suite.entry) ->
        Printf.printf "%-4s %s\n" e.Repro_experiments.Suite.id e.Repro_experiments.Suite.title)
      Repro_experiments.Suite.all;
    `Ok ()
  end
  else begin
    let only = match only with [] -> None | ids -> Some ids in
    (* resolve jobs here so a malformed REPRO_JOBS is a usage error,
       not an uncaught exception *)
    match
      match jobs with
      | Some j -> Ok j
      | None -> ( try Ok (Repro_util.Pool.default_jobs ()) with Invalid_argument m -> Error m)
    with
    | Error msg -> `Error (false, msg)
    | Ok jobs -> (
      match Repro_experiments.Suite.run ?only ~quick ~jobs ~results_dir () with
      | Ok () -> `Ok ()
      | Error msg -> `Error (false, msg))
  end

let () =
  let term =
    Term.(ret (const main $ only_arg $ quick_arg $ list_arg $ results_arg $ jobs_arg))
  in
  let info =
    Cmd.info "experiments" ~version:"1.0.0"
      ~doc:"Regenerate the tables and figures of the resource-discovery reproduction"
  in
  exit (Cmd.eval (Cmd.v info term))
