bin/experiments.ml: Arg Cmd Cmdliner List Printf Repro_experiments Term
