bin/experiments.mli:
