bin/discovery_cli.mli:
