(** The interface every discovery algorithm implements.

    An algorithm is instantiated once per node with a {!ctx} describing
    the node's initial world view; the returned {!instance} is then driven
    by the engine: [round] is called once per synchronous round to emit
    messages from start-of-round state, and [receive] once per delivered
    message during the same round's delivery phase. *)

open Repro_util

type ctx = {
  n : int;  (** total number of machines *)
  node : int;  (** this machine's index *)
  neighbors : int array;  (** initial out-neighbors (sorted) *)
  labels : int array;  (** shared label permutation (see DESIGN.md §7) *)
  rng : Rng.t;  (** this node's private random stream *)
  params : Params.t;  (** HM tuning knobs (ignored by baselines) *)
}

type instance = {
  knowledge : Knowledge.t;
      (** The node's live knowledge set; the driver reads it for
          completion checks and growth tracking. *)
  round : round:int -> send:(dst:int -> Payload.t -> unit) -> unit;
  receive : src:int -> Payload.t -> unit;
  is_quiescent : unit -> bool;
      (** [true] once the node has locally decided discovery is finished
          and stopped transmitting. Only algorithms with termination
          detection (currently {!Hm_gossip}) ever return [true]; the
          baselines run until an external observer stops them. *)
}

type t = {
  name : string;  (** stable identifier used in tables and the CLI *)
  description : string;
  make : ctx -> instance;
}

val never_quiescent : unit -> bool
(** The [is_quiescent] implementation for algorithms without termination
    detection. *)

val initial_knowledge : ctx -> Knowledge.t
(** Knowledge of self plus the initial out-neighbors — the starting state
    shared by every algorithm. *)
