(** Name-Dropper (Harchol-Balter, Leighton, Lewin 1999, §3).

    Every round, each node pushes its complete knowledge (which includes
    its own identifier — hence the name) to one uniformly random node it
    currently knows. The state of the art before the deterministic
    O(log n) algorithms and the sub-logarithmic Haeupler–Malkhi gossip:
    completes in O(log² n) rounds w.h.p. with O(n log² n) messages. *)

val algorithm : Algorithm.t
