(** Deterministic min-pointer convergecast, in the style of
    Kutten–Peleg–Vishkin ("Deterministic resource discovery in distributed
    networks", SPAA 2001).

    Every node forwards its complete knowledge to the known node with the
    smallest label (its current leader candidate) and answers each message
    it received in the previous round with its own knowledge. A node that
    *is* the minimum of its own knowledge (a root) instead broadcasts its
    knowledge to every node it knows: this merges weakly-connected "min
    islands" whose cross edges point the wrong way, and performs the final
    dissemination once the global minimum has aggregated the full view.
    Knowledge funnels down chains of strictly decreasing local minima into
    the global minimum — O(log n)-style rounds on shallow inputs, fully
    deterministic (no node ever consults its random stream).

    Crucially, and unlike {!Hm_gossip}, the comparison key is the {e raw}
    machine identifier: a deterministic algorithm cannot assume
    identifiers land randomly in the topology, so structured inputs where
    identifiers correlate with position (sorted paths, rings) produce long
    decreasing chains and logarithmic-or-worse behaviour. The gap between
    this baseline and the randomly-ranked [hm] isolates the value of rank
    randomisation. *)

val algorithm : Algorithm.t
