(** Tunable parameters of the Haeupler–Malkhi gossip algorithm.

    These are the design-space axes the ablation experiment (T7) sweeps;
    the defaults are the configuration whose behaviour matches the
    paper's claims. *)

type mode =
  | Push  (** send knowledge to random known nodes, expect nothing back *)
  | Pull  (** probe random known nodes, they reply with their knowledge *)
  | Push_pull  (** exchange: push and receive a reply (the default) *)

type partner =
  | Uniform_known
      (** partners drawn uniformly from the current knowledge set — the
          direct-addressing ingredient that makes knowledge sets square *)
  | Initial_neighbor
      (** partners drawn from the initial neighbor set only — degrades the
          algorithm to topology-bound mixing (for the ablation) *)

type t = {
  mode : mode;
  fanout : int;  (** partners contacted per round (≥ 1) *)
  delta : bool;
      (** when true, pushes carry only identifiers learned since the
          node's previous push, rather than full snapshots; replies to
          probes always carry full knowledge, preserving correctness *)
  partner : partner;
}

val default : t
(** [{ mode = Push_pull; fanout = 1; delta = false;
       partner = Uniform_known }] *)

val validate : t -> (t, string) result
(** Check [fanout ≥ 1]. *)

val describe : t -> string
(** Short tag such as ["push_pull/f1"] or ["push/f2/delta"] used in
    experiment tables. *)
