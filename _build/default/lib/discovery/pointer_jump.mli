(** Random Pointer Jump (Harchol-Balter, Leighton, Lewin 1999, §2).

    Every round, each node probes one uniformly random node it knows; the
    probed node replies (in the next round) with its complete knowledge
    but does not incorporate the prober — HLL99's update rule
    Γ(v) ← Γ(v) ∪ Γ(u) is one-directional. Pull-only transfer makes
    progress painfully slow on sparse directed inputs: on a directed
    cycle knowledge grows by O(1) identifiers per round, the Θ(n)-round
    degenerate example from HLL99 (reproduced in experiment T4). *)

val algorithm : Algorithm.t
