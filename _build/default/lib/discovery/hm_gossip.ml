open Repro_util

type broadcast = All | Cap of int | Off

type upward = Delta | Full

type state = {
  knowledge : Knowledge.t;
  pending_replies : Intvec.t;  (* exchange senders owed a reply *)
  mutable acked_upto : int;  (* knowledge mark acknowledged by the target *)
  mutable prev_sent : int;  (* mark carried by the report one round ago *)
  mutable last_sent : int;  (* mark carried by the latest report *)
  mutable report_target : int;  (* current head candidate, -1 before the first report *)
  upward_done : Bitset.t;  (* identifiers that need not flow upward again *)
  suspects : Bitset.t;  (* nodes suspected crashed (silent head candidates) *)
  mutable silence : int;  (* rounds since the current target last answered *)
  mutable halted : bool;  (* local termination decision reached *)
  mutable quiet_rounds : int;  (* consecutive uninformative rounds (heads) *)
  mutable last_card : int;  (* knowledge size at the previous round *)
  mutable saw_new_info : bool;  (* a non-empty report arrived this round *)
}

(* A head candidate that stays silent for this many report rounds is
   suspected crashed and skipped when choosing where to report. A healthy
   target answers every report within two rounds, so only loss or crashes
   trigger this; a suspected node that speaks again is rehabilitated. *)
let patience = 5

(* A head whose knowledge has been stable and whose reporters have all
   been sending empty deltas for this many consecutive rounds decides the
   protocol is finished, broadcasts [Halt], and quiesces. This is a
   heuristic (an identifier could still be in flight up a long report
   chain), so experiment T11 measures both the termination lag and the
   safety of the decision empirically. *)
let halt_patience = 5

(* Soundness of the delta reports rests on a custody argument: every
   identifier a node learns is either echoed upward in its next report or
   is already held by a node of strictly smaller rank (its report target,
   which taught it the identifier). Two rules keep the custody chain
   descending all the way to the global minimum:

   - introduction: when a node abandons head m1 for a smaller-ranked m2,
     it tells m1 about m2. An abandoned head therefore always learns of a
     smaller rank, stops being a head, and forwards its entire backlog
     (heads never advance their report mark, so their first report after
     retiring carries everything they ever aggregated);

   - no-echo filtering: identifiers taught by the current head are marked
     in [upward_done] and skipped by later reports — they are already in
     smaller-ranked custody, and echoing them would make the upward
     traffic quadratic.

   Under message loss the custody argument needs delivery, not just
   sending, so reports are retransmitted until acknowledged: each report
   carries everything unacknowledged, and the window only advances when a
   [Reply] (never a broadcast [Share] — a head broadcasts to every node
   it has merely heard of, which proves nothing about report receipt)
   arrives from the current target. A reply received in round r answers
   the report sent in round r-1, hence the two-deep mark queue. *)
let make_with ~broadcast ~upward (ctx : Algorithm.ctx) =
  let knowledge = Algorithm.initial_knowledge ctx in
  let st =
    {
      knowledge;
      pending_replies = Intvec.create ();
      acked_upto = 0;
      prev_sent = 0;
      last_sent = 0;
      report_target = -1;
      upward_done = Bitset.create ctx.n;
      suspects = Bitset.create ctx.n;
      silence = 0;
      halted = false;
      quiet_rounds = 0;
      last_card = 0;
      saw_new_info = false;
    }
  in
  let self = ctx.node in
  let round ~round:_ ~send =
    if st.halted then begin
      (* Quiescent: answer any straggling reporter with the full view
         (it may be a late joiner whose identifier everyone already knew
         but whose own knowledge is stale) followed by Halt, so it both
         completes and stops. Flow still decays to zero: each straggler
         report costs exactly two replies. *)
      if not (Intvec.is_empty st.pending_replies) then begin
        let snap = Payload.Bits (Knowledge.snapshot st.knowledge) in
        Intvec.iter
          (fun dst ->
            send ~dst (Payload.Reply snap);
            send ~dst Payload.Halt)
          st.pending_replies;
        Intvec.clear st.pending_replies
      end
    end
    else begin
    (* Answer last round's reporters with the current full view (one
       shared snapshot): this is the downward half of the exchange. *)
    let snap = lazy (Payload.Bits (Knowledge.snapshot st.knowledge)) in
    if not (Intvec.is_empty st.pending_replies) then begin
      Intvec.iter (fun dst -> send ~dst (Payload.Reply (Lazy.force snap))) st.pending_replies;
      Intvec.clear st.pending_replies
    end;
    let head =
      if Bitset.is_empty st.suspects then Knowledge.min_known st.knowledge
      else Knowledge.min_known_excluding st.knowledge ~suspects:st.suspects
    in
    (* local termination detection (heads only): nothing new learned and
       only empty reports for several consecutive rounds *)
    if head = self then begin
      if Knowledge.cardinal st.knowledge = st.last_card && not st.saw_new_info then
        st.quiet_rounds <- st.quiet_rounds + 1
      else st.quiet_rounds <- 0
    end
    else st.quiet_rounds <- 0;
    st.last_card <- Knowledge.cardinal st.knowledge;
    st.saw_new_info <- false;
    if head = self && st.quiet_rounds >= halt_patience then begin
      st.halted <- true;
      Array.iter
        (fun dst -> if dst <> self then send ~dst Payload.Halt)
        (Knowledge.elements_in_learn_order st.knowledge)
    end
    else if head <> self then begin
      if st.report_target <> head then begin
        if st.report_target >= 0 then
          send ~dst:st.report_target (Payload.Share (Payload.Ids [| head |]));
        st.report_target <- head;
        st.silence <- 0;
        (* marks refer to the old target's reply stream *)
        st.prev_sent <- st.acked_upto;
        st.last_sent <- st.acked_upto
      end
      else begin
        st.silence <- st.silence + 1;
        if st.silence > patience then begin
          ignore (Bitset.add st.suspects head);
          st.silence <- 0
        end
      end;
      (* Report to the head candidate. An empty report still goes out —
         it doubles as the pull request for the head's reply. *)
      let data =
        match upward with
        | Delta ->
          let recent = Knowledge.since st.knowledge ~mark:st.acked_upto in
          st.prev_sent <- st.last_sent;
          st.last_sent <- Knowledge.mark st.knowledge;
          let keep = ref 0 in
          Array.iter (fun v -> if not (Bitset.mem st.upward_done v) then incr keep) recent;
          let fresh = Array.make !keep 0 in
          let i = ref 0 in
          Array.iter
            (fun v ->
              if not (Bitset.mem st.upward_done v) then begin
                fresh.(!i) <- v;
                incr i
              end)
            recent;
          Payload.Ids fresh
        | Full -> Lazy.force snap
      in
      send ~dst:head (Payload.Exchange data)
    end
    else begin
      (* Head: broadcast the full view to the cluster and to every foreign
         node this head has heard of — the growing-fan-out exchange. *)
      match broadcast with
      | Off -> ()
      | All ->
        Array.iter
          (fun dst -> if dst <> self then send ~dst (Payload.Share (Lazy.force snap)))
          (Knowledge.elements_in_learn_order st.knowledge)
      | Cap k ->
        Array.iter
          (fun dst -> send ~dst (Payload.Share (Lazy.force snap)))
          (Knowledge.random_known_among st.knowledge ctx.rng ~k)
    end
    end
  in
  (* A full snapshot's contents stay in the sharer's custody — the
     sharer either reports them down-rank itself or, if it is a head,
     hands over its backlog when it retires. Only the sharer's own
     existence must keep flowing upward, so its done-bit is cleared when
     the snapshot came from a foreign node. Small explicit lists
     (introductions) are head identifiers that must propagate and are
     never marked done. *)
  let note_custody ~src d =
    match (d : Payload.data) with
    | Payload.Bits b ->
      ignore (Bitset.union_into ~dst:st.upward_done ~src:b);
      if src <> st.report_target then ignore (Bitset.remove st.upward_done src)
    | Payload.Ids _ -> ()
  in
  (* Quiescence is reversible: a message that teaches anything new, or
     contact from a node we have never heard of (a late joiner), wakes a
     halted node so the system re-converges and re-halts — without this,
     churn arriving after the Halt wave would be stranded. *)
  let wake () =
    if st.halted then begin
      st.halted <- false;
      st.quiet_rounds <- 0
    end
  in
  let receive ~src payload =
    if Bitset.mem st.suspects src then ignore (Bitset.remove st.suspects src);
    if src = st.report_target then st.silence <- 0;
    match (payload : Payload.t) with
    | Exchange d ->
      if Payload.data_size d > 0 then st.saw_new_info <- true;
      if not (Knowledge.knows st.knowledge src) then wake ();
      if Payload.merge_data st.knowledge d > 0 then wake ();
      ignore (Knowledge.add st.knowledge src);
      Intvec.push st.pending_replies src
    | Reply d ->
      if Payload.merge_data st.knowledge d > 0 then wake ();
      if src = st.report_target then begin
        st.acked_upto <- max st.acked_upto st.prev_sent;
        match d with
        | Payload.Bits b -> ignore (Bitset.union_into ~dst:st.upward_done ~src:b)
        | Payload.Ids ids -> Array.iter (fun v -> ignore (Bitset.add st.upward_done v)) ids
      end
      else note_custody ~src d
    | Share d ->
      if Payload.merge_data st.knowledge d > 0 then wake ();
      note_custody ~src d
    | Probe ->
      if not (Knowledge.knows st.knowledge src) then wake ();
      ignore (Knowledge.add st.knowledge src);
      Intvec.push st.pending_replies src
    | Halt -> st.halted <- true
  in
  { Algorithm.knowledge; round; receive; is_quiescent = (fun () -> st.halted) }

let variant_name ~broadcast ~upward =
  let b =
    match broadcast with All -> "" | Cap k -> Printf.sprintf ":cap:%d" k | Off -> ":nobroadcast"
  in
  let u =
    match upward with Delta -> "" | Full -> ( match broadcast with All -> ":full" | _ -> "/full")
  in
  "hm" ^ b ^ u

let with_variant ?(broadcast = All) ?(upward = Delta) () =
  (match broadcast with
  | Cap k when k < 1 -> invalid_arg "Hm_gossip.with_variant: cap must be >= 1"
  | _ -> ());
  {
    Algorithm.name = variant_name ~broadcast ~upward;
    description = "Haeupler-Malkhi sub-logarithmic discovery (ablation variant)";
    make = make_with ~broadcast ~upward;
  }

let algorithm =
  {
    Algorithm.name = "hm";
    description =
      "Haeupler-Malkhi sub-logarithmic discovery: rank-based cluster convergecast with head \
       broadcast";
    make = make_with ~broadcast:All ~upward:Delta;
  }
