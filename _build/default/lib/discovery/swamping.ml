type state = { knowledge : Knowledge.t }

let make (ctx : Algorithm.ctx) =
  let knowledge = Algorithm.initial_knowledge ctx in
  let st = { knowledge } in
  let self = ctx.node in
  let round ~round:_ ~send =
    (* One snapshot per round, shared across the whole fan-out: payload
       bitsets are immutable by convention. *)
    let snap = Payload.Bits (Knowledge.snapshot st.knowledge) in
    Array.iter
      (fun dst -> if dst <> self then send ~dst (Payload.Share snap))
      (Knowledge.elements_in_learn_order st.knowledge)
  in
  let receive ~src:_ payload =
    match (payload : Payload.t) with
    | Share d | Exchange d | Reply d -> ignore (Payload.merge_data st.knowledge d)
    | Probe | Halt -> ()
  in
  { Algorithm.knowledge; round; receive; is_quiescent = Algorithm.never_quiescent }

let algorithm =
  {
    Algorithm.name = "swamping";
    description = "HLL99 swamping: full knowledge to all current neighbors (graph squaring)";
    make;
  }
