(** The Haeupler–Malkhi sub-logarithmic discovery algorithm (PODC 2015) —
    reconstruction (see DESIGN.md §2).

    Structure: every node carries a uniformly random {e rank} (the shared
    label permutation drawn per run); node states implicitly form
    clusters around {e heads} — the nodes whose rank is minimal in their
    own knowledge. Each round:

    - a {b non-head} [v] sends the identifiers it learned since its last
      report to its current head candidate (the minimum-rank node it
      knows) and expects the head's full knowledge back — a pull that
      keeps knowledge funnelling both up and down the cluster;
    - a {b head} broadcasts its full knowledge to {e every} node it
      knows. Head broadcasts are what makes the algorithm sub-logarithmic:
      a head's audience grows with its knowledge, so surviving heads
      exchange ever-larger views while the number of heads collapses —
      the doubly-exponential dynamics that flat O(1)-fan-out gossip
      (see {!Rand_gossip}) provably cannot achieve. When a head learns of
      a smaller-ranked node it stops broadcasting and reports to it,
      merging its whole cluster's knowledge into the winner.

    The last surviving head is the global minimum rank; it aggregates
    everyone (every retirement chain ends at it) and its broadcasts carry
    the complete view back out, so strong discovery follows the last
    merge within two rounds. Per round every non-head sends O(1) messages
    and head fan-out totals O(n), keeping the message complexity at the
    optimal O(n) per round; randomised ranks make head-chains short
    regardless of how identifiers sit in the topology — the deterministic
    variant without them is the {!Min_pointer} baseline.

    Fault tolerance. Reports are delta-encoded but retransmitted until
    the head's {!Payload.Reply} acknowledges them, so message loss only
    delays the custody chain (experiment T5). A head candidate that stays
    silent for several report rounds is suspected crashed, skipped when
    choosing where to report, and rehabilitated if it ever speaks again —
    under crash-stop faults the surviving nodes re-cluster around the
    smallest surviving rank (experiment T6).

    Local termination. A head whose knowledge has been stable and whose
    reporters have all sent empty deltas for several consecutive rounds
    decides the protocol is finished, broadcasts {!Payload.Halt}, and
    quiesces ({!Algorithm.instance.is_quiescent}); the whole system's
    message flow then decays to zero (experiment T11). Quiescence is
    reversible — any message carrying new information, or contact from an
    unknown node, wakes a halted node, and a halted node answers a
    straggling reporter (e.g. a late joiner) with its full view followed
    by [Halt], so churn arriving after the Halt wave is integrated and
    the system re-quiesces (experiment T9 + the reversibility tests). *)

val algorithm : Algorithm.t

(** {2 Ablation variants (experiment T7)} *)

type broadcast =
  | All  (** heads broadcast to everything they know (the algorithm) *)
  | Cap of int  (** heads broadcast to at most [k] random known nodes *)
  | Off  (** heads stay silent — demonstrates the island stalemate *)

type upward =
  | Delta  (** non-heads report only newly-learned identifiers (default) *)
  | Full  (** non-heads report full snapshots — the pointer-cost ablation *)

val with_variant : ?broadcast:broadcast -> ?upward:upward -> unit -> Algorithm.t
(** Variants are named ["hm"], ["hm:cap:K"], ["hm:nobroadcast"],
    ["hm:full"], ["hm:cap:K/full"], …
    @raise Invalid_argument if [Cap k] has [k < 1]. *)
