(** Swamping (Harchol-Balter, Leighton, Lewin 1999, §2).

    Every round, each node sends its complete knowledge to *every* node
    it currently knows. The knowledge graph squares each round, so
    discovery completes in O(log n) rounds on any weakly-connected input
    — at the cost of Θ(n²) total messages and Θ(n³) pointers, which is
    why the experiment harness only runs swamping at modest n. *)

val algorithm : Algorithm.t
