(** Asynchronous execution of a discovery algorithm.

    The same algorithms that run in lockstep under {!Run} execute here on
    drifting per-node timers with variable message latency (see
    {!Repro_engine.Async_sim}). The headline question this answers:
    do the synchronous round counts survive asynchrony, or do they hide a
    dependence on lockstep? (Experiment T10: they survive — completion
    time in time units tracks the synchronous round counts closely even
    under heavy latency spread.) *)

open Repro_graph
open Repro_engine

type result = {
  algorithm : string;
  n : int;
  seed : int;
  completed : bool;
  time : float;  (** simulated time to completion (node period ≈ 1) *)
  ticks : int;  (** total node activations *)
  messages : int;
  pointers : int;
  dropped : int;
  alive : bool array;
}

val exec :
  ?seed:int ->
  ?fault:Fault.t ->
  ?completion:Run.completion ->
  ?horizon:float ->
  ?tick_jitter:float ->
  ?latency:float * float ->
  Algorithm.t ->
  Topology.t ->
  result
(** Defaults: horizon [4·n + 64.] time units, jitter 0.1,
    latency ∈ [0.1, 0.9] (so a message takes about half a local round on
    average). Determinism and the completion predicates are as in
    {!Run.exec}; under late joins, completion is gated on the last join
    time. *)
