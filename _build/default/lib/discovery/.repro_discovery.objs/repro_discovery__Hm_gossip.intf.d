lib/discovery/hm_gossip.mli: Algorithm
