lib/discovery/wire.mli: Payload
