lib/discovery/hm_gossip.ml: Algorithm Array Bitset Intvec Knowledge Lazy Payload Printf Repro_util
