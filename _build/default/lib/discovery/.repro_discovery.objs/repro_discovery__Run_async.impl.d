lib/discovery/run_async.ml: Algorithm Array Async_sim Bitset Fault Knowledge List Metrics Params Payload Repro_engine Repro_graph Repro_util Rng Run Sim Topology
