lib/discovery/name_dropper.ml: Algorithm Knowledge Payload
