lib/discovery/swamping.ml: Algorithm Array Knowledge Payload
