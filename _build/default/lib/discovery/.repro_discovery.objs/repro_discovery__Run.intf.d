lib/discovery/run.mli: Algorithm Fault Metrics Repro_engine Repro_graph Topology Wire
