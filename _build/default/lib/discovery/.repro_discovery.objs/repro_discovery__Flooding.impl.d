lib/discovery/flooding.ml: Algorithm Array Knowledge Payload
