lib/discovery/rand_gossip.mli: Algorithm Params
