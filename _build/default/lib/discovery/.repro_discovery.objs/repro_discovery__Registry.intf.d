lib/discovery/registry.mli: Algorithm
