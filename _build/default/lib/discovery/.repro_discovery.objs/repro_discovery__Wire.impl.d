lib/discovery/wire.ml: Array Bitset Buffer Bytes Char List Payload Repro_util
