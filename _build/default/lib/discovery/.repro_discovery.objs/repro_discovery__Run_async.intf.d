lib/discovery/run_async.mli: Algorithm Fault Repro_engine Repro_graph Run Topology
