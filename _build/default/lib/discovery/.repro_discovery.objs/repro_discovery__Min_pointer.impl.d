lib/discovery/min_pointer.ml: Algorithm Array Intvec Knowledge Payload Repro_util
