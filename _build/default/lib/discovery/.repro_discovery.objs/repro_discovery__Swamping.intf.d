lib/discovery/swamping.mli: Algorithm
