lib/discovery/payload.mli: Bitset Format Knowledge Repro_util
