lib/discovery/knowledge.ml: Array Bitset Hashtbl Intvec Repro_util Rng
