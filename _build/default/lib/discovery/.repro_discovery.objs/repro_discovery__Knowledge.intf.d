lib/discovery/knowledge.mli: Bitset Repro_util Rng
