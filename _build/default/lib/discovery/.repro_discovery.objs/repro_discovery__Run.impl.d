lib/discovery/run.ml: Algorithm Array Bitset Fault Knowledge List Metrics Params Payload Repro_engine Repro_graph Repro_util Rng Sim Topology Wire
