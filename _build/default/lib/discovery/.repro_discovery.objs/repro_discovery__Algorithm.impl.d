lib/discovery/algorithm.ml: Array Knowledge Params Payload Repro_util Rng
