lib/discovery/name_dropper.mli: Algorithm
