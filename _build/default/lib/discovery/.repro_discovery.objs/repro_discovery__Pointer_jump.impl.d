lib/discovery/pointer_jump.ml: Algorithm Intvec Knowledge Payload Repro_util
