lib/discovery/payload.ml: Array Bitset Format Knowledge Repro_util
