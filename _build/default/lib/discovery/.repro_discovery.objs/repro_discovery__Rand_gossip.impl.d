lib/discovery/rand_gossip.ml: Algorithm Array Intvec Knowledge Params Payload Printf Repro_util Rng
