lib/discovery/algorithm.mli: Knowledge Params Payload Repro_util Rng
