lib/discovery/params.mli:
