lib/discovery/flooding.mli: Algorithm
