lib/discovery/params.ml: Printf
