lib/discovery/pointer_jump.mli: Algorithm
