lib/discovery/registry.ml: Algorithm Flooding Hm_gossip List Min_pointer Name_dropper Params Pointer_jump Printf Rand_gossip Result String Swamping
