lib/discovery/min_pointer.mli: Algorithm
