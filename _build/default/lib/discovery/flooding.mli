(** Flooding (Harchol-Balter, Leighton, Lewin 1999, §2).

    Every round, each node sends the identifiers it learned since its
    previous send to all of its *initial* out-neighbors. Knowledge thus
    flows only along original edges: Θ(D) rounds on symmetric topologies
    (D = diameter), and on weakly-but-not-strongly connected graphs it
    converges to reachability knowledge without ever achieving complete
    discovery — the classic motivation for algorithms that exploit
    direct addressing. *)

val algorithm : Algorithm.t
