open Repro_util

type data = Bits of Bitset.t | Ids of int array

type t = Share of data | Exchange of data | Reply of data | Probe | Halt

let data_size = function Bits b -> Bitset.cardinal b | Ids a -> Array.length a

let measure = function Share d | Exchange d | Reply d -> data_size d | Probe | Halt -> 1

let merge_data knowledge = function
  | Bits b -> Knowledge.merge_bits knowledge b
  | Ids a -> Knowledge.merge_ids knowledge a

let pp ppf = function
  | Share d -> Format.fprintf ppf "share(%d)" (data_size d)
  | Exchange d -> Format.fprintf ppf "exchange(%d)" (data_size d)
  | Reply d -> Format.fprintf ppf "reply(%d)" (data_size d)
  | Probe -> Format.fprintf ppf "probe"
  | Halt -> Format.fprintf ppf "halt"
