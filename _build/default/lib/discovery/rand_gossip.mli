(** Flat random gossip with direct addressing.

    Each round, every node draws [fanout] partners uniformly at random
    from its *current knowledge set* and pushes/pulls/exchanges knowledge
    with them. This is the natural "use what you've learned" upgrade of
    Name-Dropper and an important comparison point for the paper's
    algorithm — but it is provably {e not} sub-logarithmic: with O(1)
    partners per round a knowledge set can at most quadruple per round
    (own set ∪ one pushed set ∪ one pulled set), forcing Ω(log n) rounds.
    The experiments show exactly that shape. Sub-logarithmic time needs
    the growing-fan-out cluster-head structure of {!Hm_gossip}.

    The {!Params.t} knobs (mode, fanout, delta-encoding, partner choice)
    are the T7 ablation axes. *)

val algorithm : Algorithm.t
(** The {!Params.default} configuration (push–pull, fanout 1, full
    snapshots, uniform partners). *)

val with_params : Params.t -> Algorithm.t
(** Ablation variant named ["rand:" ^ Params.describe params].
    @raise Invalid_argument if the parameters fail {!Params.validate}. *)
