type mode = Push | Pull | Push_pull

type partner = Uniform_known | Initial_neighbor

type t = { mode : mode; fanout : int; delta : bool; partner : partner }

let default = { mode = Push_pull; fanout = 1; delta = false; partner = Uniform_known }

let validate t = if t.fanout < 1 then Error "fanout must be >= 1" else Ok t

let describe t =
  let mode = match t.mode with Push -> "push" | Pull -> "pull" | Push_pull -> "push_pull" in
  let partner = match t.partner with Uniform_known -> "" | Initial_neighbor -> "/nbr" in
  Printf.sprintf "%s/f%d%s%s" mode t.fanout (if t.delta then "/delta" else "") partner
