let all =
  [
    Flooding.algorithm;
    Swamping.algorithm;
    Pointer_jump.algorithm;
    Name_dropper.algorithm;
    Min_pointer.algorithm;
    Rand_gossip.algorithm;
    Hm_gossip.algorithm;
  ]

let baselines = List.filter (fun a -> a.Algorithm.name <> "hm") all

let parse_rand_spec spec =
  (* spec grammar: MODE "/f" INT ["/delta"] ["/nbr"], as produced by
     Params.describe. *)
  let parts = String.split_on_char '/' spec in
  let init = { Params.default with Params.delta = false; partner = Params.Uniform_known } in
  let step acc part =
    match acc with
    | Error _ -> acc
    | Ok p -> (
      match part with
      | "push" -> Ok { p with Params.mode = Params.Push }
      | "pull" -> Ok { p with Params.mode = Params.Pull }
      | "push_pull" -> Ok { p with Params.mode = Params.Push_pull }
      | "delta" -> Ok { p with Params.delta = true }
      | "nbr" -> Ok { p with Params.partner = Params.Initial_neighbor }
      | _ when String.length part > 1 && part.[0] = 'f' -> (
        match int_of_string_opt (String.sub part 1 (String.length part - 1)) with
        | Some f when f >= 1 -> Ok { p with Params.fanout = f }
        | _ -> Error (Printf.sprintf "bad fanout %S" part))
      | _ -> Error (Printf.sprintf "unknown rand_gossip parameter %S" part))
  in
  List.fold_left step (Ok init) parts

let parse_hm_spec spec =
  (* spec grammar: ("cap:" INT | "nobroadcast") ["/full"] | "full" *)
  match String.split_on_char '/' spec with
  | [ "full" ] -> Ok (Hm_gossip.with_variant ~upward:Hm_gossip.Full ())
  | [ head ] | [ head; "full" ] as parts -> (
    let upward = if List.length parts = 2 then Hm_gossip.Full else Hm_gossip.Delta in
    match String.split_on_char ':' head with
    | [ "nobroadcast" ] -> Ok (Hm_gossip.with_variant ~broadcast:Hm_gossip.Off ~upward ())
    | [ "cap"; k ] -> (
      match int_of_string_opt k with
      | Some k when k >= 1 -> Ok (Hm_gossip.with_variant ~broadcast:(Hm_gossip.Cap k) ~upward ())
      | _ -> Error (Printf.sprintf "bad hm cap %S" k))
    | _ -> Error (Printf.sprintf "unknown hm variant %S" spec))
  | _ -> Error (Printf.sprintf "unknown hm variant %S" spec)

let prefixed ~prefix name =
  let pl = String.length prefix in
  if String.length name > pl && String.sub name 0 pl = prefix then
    Some (String.sub name pl (String.length name - pl))
  else None

let find name =
  match List.find_opt (fun a -> a.Algorithm.name = name) all with
  | Some a -> Ok a
  | None -> (
    match prefixed ~prefix:"rand:" name with
    | Some spec -> Result.map Rand_gossip.with_params (parse_rand_spec spec)
    | None -> (
      match prefixed ~prefix:"hm:" name with
      | Some spec -> parse_hm_spec spec
      | None ->
        Error
          (Printf.sprintf "unknown algorithm %S (known: %s)" name
             (String.concat ", " (List.map (fun a -> a.Algorithm.name) all)))))

let names () = List.map (fun a -> a.Algorithm.name) all
