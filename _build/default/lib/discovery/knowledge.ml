open Repro_util

type t = {
  owner : int;
  bits : Bitset.t;
  order : Intvec.t;  (* known ids in learn order; order.(0) = owner *)
  labels : int array;
  mutable best : int;  (* argmin of labels over the known set *)
  mutable best_raw : int;  (* min raw index over the known set *)
}

let create ~n ~owner ~labels =
  if owner < 0 || owner >= n then invalid_arg "Knowledge.create: owner out of range";
  if Array.length labels <> n then invalid_arg "Knowledge.create: labels length mismatch";
  let bits = Bitset.create n in
  ignore (Bitset.add bits owner);
  let order = Intvec.create () in
  Intvec.push order owner;
  { owner; bits; order; labels; best = owner; best_raw = owner }

let owner t = t.owner
let universe t = Bitset.capacity t.bits
let cardinal t = Bitset.cardinal t.bits
let knows t v = Bitset.mem t.bits v
let is_complete t = Bitset.is_full t.bits

let note t v =
  Intvec.push t.order v;
  if t.labels.(v) < t.labels.(t.best) then t.best <- v;
  if v < t.best_raw then t.best_raw <- v

let add t v =
  let fresh = Bitset.add t.bits v in
  if fresh then note t v;
  fresh

let merge_bits t src = Bitset.union_into_with ~dst:t.bits ~src (note t)

let merge_ids t ids =
  let learned = ref 0 in
  Array.iter
    (fun v ->
      if Bitset.add t.bits v then begin
        note t v;
        incr learned
      end)
    ids;
  !learned

let snapshot t = Bitset.copy t.bits
let contents t = t.bits

let mark t = Intvec.length t.order

let since t ~mark =
  if mark < 0 || mark > Intvec.length t.order then invalid_arg "Knowledge.since: invalid mark";
  Intvec.sub t.order ~pos:mark ~len:(Intvec.length t.order - mark)

let random_known t rng =
  let len = Intvec.length t.order in
  if len <= 1 then None
  else begin
    (* The owner sits somewhere in the order vector; draw until we miss
       it. With ≥ 2 elements each draw succeeds with probability ≥ 1/2. *)
    let rec draw () =
      let v = Intvec.get t.order (Rng.int rng len) in
      if v = t.owner then draw () else v
    in
    Some (draw ())
  end

let random_known_among t rng ~k =
  let len = Intvec.length t.order in
  let avail = len - 1 in
  let k = min k avail in
  if k <= 0 then [||]
  else begin
    (* Draw distinct ranks in the order vector, skipping the owner. *)
    let chosen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let v = Intvec.get t.order (Rng.int rng len) in
      if v <> t.owner && not (Hashtbl.mem chosen v) then begin
        Hashtbl.add chosen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end

let min_known t = t.best
let min_known_raw t = t.best_raw

let min_known_excluding t ~suspects =
  if Bitset.capacity suspects <> Bitset.capacity t.bits then
    invalid_arg "Knowledge.min_known_excluding: capacity mismatch";
  if not (Bitset.mem suspects t.best) then t.best
  else begin
    let best = ref t.owner in
    Intvec.iter
      (fun v ->
        if (not (Bitset.mem suspects v)) && t.labels.(v) < t.labels.(!best) then best := v)
      t.order;
    !best
  end
let elements_in_learn_order t = Intvec.to_array t.order
