(* xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64. Chosen over
   Stdlib.Random for cross-version reproducibility: experiment outputs are
   a pure function of the integer seed. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* splitmix64 step: used for seeding and stream derivation. *)
let splitmix_next state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let of_splitmix state =
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  (* xoshiro state must not be all-zero; splitmix output makes this
     astronomically unlikely, but guard anyway. *)
  if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let create ~seed = of_splitmix (ref (Int64.of_int seed))

let bits64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (bits64 t) in
  of_splitmix state

let substream ~seed ~index =
  let state = ref (Int64.logxor (Int64.of_int seed) (Int64.mul (Int64.of_int index) 0xD1342543DE82EF95L)) in
  of_splitmix state

(* Unbiased bounded sampling by rejection on the top 62 bits (staying in
   OCaml's nativeint-friendly positive range). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.shift_right_logical (bits64 t) 2 |> Int64.to_int in
  if bound land (bound - 1) = 0 then mask land (bound - 1)
  else begin
    let limit = 0x3FFF_FFFF_FFFF_FFFF / bound * bound in
    let rec draw v = if v < limit then v mod bound else draw (Int64.shift_right_logical (bits64 t) 2 |> Int64.to_int) in
    draw mask
  end

let float t bound =
  (* 53 random mantissa bits. *)
  let x = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float x *. (1.0 /. 9007199254740992.0) *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t ~p = if p <= 0.0 then false else if p >= 1.0 then true else float t 1.0 < p

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle_in_place t a;
  a

let sample_distinct t ~n ~k ~avoid =
  let eligible = if avoid >= 0 && avoid < n then n - 1 else n in
  if k < 0 || k > eligible then invalid_arg "Rng.sample_distinct: unsatisfiable request";
  (* Floyd's algorithm keeps this O(k) in expectation for k << n; fall back
     to a shuffle when k is a large fraction of n. *)
  if k * 3 >= eligible then begin
    let pool = Array.make eligible 0 in
    let j = ref 0 in
    for v = 0 to n - 1 do
      if v <> avoid then begin
        pool.(!j) <- v;
        incr j
      end
    done;
    shuffle_in_place t pool;
    Array.sub pool 0 k
  end
  else begin
    let chosen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let v = int t n in
      if v <> avoid && not (Hashtbl.mem chosen v) then begin
        Hashtbl.add chosen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end
