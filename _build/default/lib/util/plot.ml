type series = { label : string; points : (float * float) list }

let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&'; '='; '~' |]

let transform log v = if log then Stats.log2 v else v

let render ?(width = 64) ?(height = 18) ?(logx = false) ?(logy = false) ~title ~xlabel ~ylabel
    series_list =
  let usable =
    List.map
      (fun s ->
        let pts =
          List.filter (fun (x, y) -> (not logx || x > 0.0) && (not logy || y > 0.0)) s.points
        in
        { s with points = pts })
      series_list
  in
  let all_points = List.concat_map (fun s -> s.points) usable in
  if all_points = [] then Printf.sprintf "%s\n  (no plottable points)\n" title
  else begin
    (* All geometry below happens in transformed (plot-space) coordinates. *)
    let xs = List.map (fun (x, _) -> transform logx x) all_points in
    let ys = List.map (fun (_, y) -> transform logy y) all_points in
    let xmin = List.fold_left Float.min infinity xs in
    let xmax = List.fold_left Float.max neg_infinity xs in
    let ymin = List.fold_left Float.min infinity ys in
    let ymax = List.fold_left Float.max neg_infinity ys in
    let xspan = if xmax -. xmin <= 0.0 then 1.0 else xmax -. xmin in
    let yspan = if ymax -. ymin <= 0.0 then 1.0 else ymax -. ymin in
    let grid = Array.make_matrix height width ' ' in
    let cell_of x y =
      let gx = int_of_float (Float.round ((x -. xmin) /. xspan *. float_of_int (width - 1))) in
      let gy = int_of_float (Float.round ((y -. ymin) /. yspan *. float_of_int (height - 1))) in
      (height - 1 - max 0 (min (height - 1) gy), max 0 (min (width - 1) gx))
    in
    let draw_series idx s =
      let glyph = glyphs.(idx mod Array.length glyphs) in
      let sorted =
        List.sort (fun (a, _) (b, _) -> compare a b) s.points
        |> List.map (fun (x, y) -> (transform logx x, transform logy y))
      in
      (* Faint interpolation dots between consecutive points so curves
         read as lines rather than isolated markers. *)
      let rec segments = function
        | (x1, y1) :: ((x2, y2) :: _ as rest) ->
          let steps = 8 in
          for k = 1 to steps - 1 do
            let f = float_of_int k /. float_of_int steps in
            let row, col = cell_of (x1 +. (f *. (x2 -. x1))) (y1 +. (f *. (y2 -. y1))) in
            if grid.(row).(col) = ' ' then grid.(row).(col) <- '.'
          done;
          segments rest
        | _ -> ()
      in
      segments sorted;
      List.iter
        (fun (x, y) ->
          let row, col = cell_of x y in
          if grid.(row).(col) = ' ' || grid.(row).(col) = '.' then grid.(row).(col) <- glyph)
        sorted
    in
    List.iteri draw_series usable;
    let buf = Buffer.create 2048 in
    Buffer.add_string buf title;
    Buffer.add_char buf '\n';
    let fmt_tick v log =
      if log then Printf.sprintf "%.3g" (Float.pow 2.0 v) else Printf.sprintf "%.3g" v
    in
    let ylab_top = fmt_tick ymax logy in
    let ylab_bot = fmt_tick ymin logy in
    let margin =
      List.fold_left max 0
        (List.map String.length [ ylab_top; ylab_bot; ylabel ])
    in
    for row = 0 to height - 1 do
      let label =
        if row = 0 then ylab_top
        else if row = height - 1 then ylab_bot
        else if row = height / 2 then ylabel
        else ""
      in
      Buffer.add_string buf (Printf.sprintf "%*s |" margin label);
      Buffer.add_string buf (String.init width (fun c -> grid.(row).(c)));
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf (String.make margin ' ');
    Buffer.add_string buf " +";
    Buffer.add_string buf (String.make width '-');
    Buffer.add_char buf '\n';
    let left_tick = fmt_tick xmin logx and right_tick = fmt_tick xmax logx in
    let gap = max 1 (width - String.length left_tick - String.length right_tick) in
    let xlabel_line =
      let pad_total = max 0 (gap - String.length xlabel) in
      let lpad = pad_total / 2 in
      String.make lpad ' ' ^ xlabel ^ String.make (max 0 (pad_total - lpad)) ' '
    in
    Buffer.add_string buf
      (Printf.sprintf "%*s  %s%s%s\n" margin "" left_tick xlabel_line right_tick);
    Buffer.add_string buf "legend:";
    List.iteri
      (fun i s ->
        Buffer.add_string buf
          (Printf.sprintf " [%c] %s" glyphs.(i mod Array.length glyphs) s.label))
      usable;
    Buffer.add_char buf '\n';
    if logx then Buffer.add_string buf "(x axis: log2 scale)\n";
    if logy then Buffer.add_string buf "(y axis: log2 scale)\n";
    Buffer.contents buf
  end
