(** ASCII table rendering for experiment reports.

    Tables render in a GitHub-Markdown-compatible format so experiment
    output can be pasted directly into EXPERIMENTS.md. *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t
(** [create ~columns] starts a table with the given header cells. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val add_separator : t -> unit
(** Insert a horizontal rule between row groups. *)

val render : t -> string
(** Render with column widths fitted to content. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

(** Cell formatting helpers. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_mean_std : Stats.summary -> string
(** ["12.4 ± 0.8"]. *)
