(** Small descriptive-statistics helpers for experiment reporting. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator); 0 for n ≤ 1 *)
  min : float;
  max : float;
  median : float;
}

val summarize : float list -> summary
(** @raise Invalid_argument on the empty list. *)

val summarize_ints : int list -> summary

val mean : float list -> float
(** @raise Invalid_argument on the empty list. *)

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation between
    order statistics. @raise Invalid_argument on the empty list or a [p]
    outside the range. *)

val geometric_mean : float list -> float
(** @raise Invalid_argument on the empty list or non-positive values. *)

(** Reference curves for shape-checking measured complexities. *)

val log2 : float -> float
val loglog2 : float -> float
(** [loglog2 x] = log₂ log₂ x, for x > 2. *)

val fit_ratio : xs:float list -> ys:float list -> f:(float -> float) -> float
(** Least-squares scale [c] minimising Σ (yᵢ − c·f(xᵢ))²; used to check
    that a measured series grows like a reference curve.
    @raise Invalid_argument on length mismatch or empty input. *)

val fit_residual : xs:float list -> ys:float list -> f:(float -> float) -> float
(** Normalised root-mean-square residual of the best fit of [c·f] to the
    data: 0 means a perfect fit of the shape. *)
