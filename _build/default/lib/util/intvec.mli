(** Growable arrays of integers.

    Used for the insertion-ordered element lists that accompany knowledge
    bitsets (uniform random choice over a knowledge set needs O(1) access
    by rank) and for per-round metric series. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val get : t -> int -> int
(** @raise Invalid_argument if the index is out of bounds. *)

val set : t -> int -> int -> unit
(** @raise Invalid_argument if the index is out of bounds. *)

val push : t -> int -> unit
val pop : t -> int
(** Removes and returns the last element. @raise Invalid_argument if empty. *)

val clear : t -> unit
val is_empty : t -> bool
val iter : (int -> unit) -> t -> unit
val iteri : (int -> int -> unit) -> t -> unit
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
val to_array : t -> int array
val sub : t -> pos:int -> len:int -> int array
(** [sub t ~pos ~len] copies the slice [pos .. pos+len-1].
    @raise Invalid_argument on an invalid slice. *)

val of_array : int array -> t
val last : t -> int
(** @raise Invalid_argument if empty. *)
