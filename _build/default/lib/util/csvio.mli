(** Minimal CSV emission (RFC-4180 quoting) for experiment data files.

    Every figure rendered by the harness also persists its raw data as
    CSV so results can be re-plotted with external tooling. *)

val ensure_dir : string -> unit
(** Create a directory (and its parents) if missing. *)

val escape : string -> string
(** Quote a field if it contains a comma, quote, or newline. *)

val row_to_string : string list -> string
(** One CSV line, without the trailing newline. *)

val write : path:string -> header:string list -> rows:string list list -> unit
(** Write a whole file (header first). Creates parent directories as
    needed. *)

val append_rows : path:string -> rows:string list list -> unit
(** Append rows to an existing file. *)
