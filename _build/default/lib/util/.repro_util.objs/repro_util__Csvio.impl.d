lib/util/csvio.ml: Buffer Filename Fun List String Sys Unix
