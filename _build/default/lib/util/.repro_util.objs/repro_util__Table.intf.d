lib/util/table.mli: Stats
