lib/util/csvio.mli:
