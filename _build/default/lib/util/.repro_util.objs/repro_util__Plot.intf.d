lib/util/plot.mli:
