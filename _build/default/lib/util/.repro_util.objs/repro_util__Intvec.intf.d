lib/util/intvec.mli:
