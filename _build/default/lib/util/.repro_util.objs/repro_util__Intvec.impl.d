lib/util/intvec.ml: Array
