lib/util/table.ml: Buffer Float List Printf Stats String
