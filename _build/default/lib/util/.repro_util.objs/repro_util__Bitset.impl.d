lib/util/bitset.ml: Array Format List
