lib/util/stats.mli:
