lib/util/rng.mli:
