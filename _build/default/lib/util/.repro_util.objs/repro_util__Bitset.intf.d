lib/util/bitset.mli: Format
