(* Bits are packed 32 per native [int] word (bit [v] lives in word
   [v lsr 5] at position [v land 31]). Native ints keep every operation
   unboxed — an [Int64 array] representation measured ~50x slower because
   each element access allocates. Cardinality is maintained incrementally
   so completion checks in the simulator are O(1) per node. *)

type t = { n : int; words : int array; mutable card : int }

let bits_per_word = 32

let words_for n = (n + bits_per_word - 1) / bits_per_word

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { n; words = Array.make (words_for n) 0; card = 0 }

let capacity t = t.n
let cardinal t = t.card
let is_empty t = t.card = 0

let check t v = if v < 0 || v >= t.n then invalid_arg "Bitset: element out of range"

let mem t v =
  check t v;
  t.words.(v lsr 5) land (1 lsl (v land 31)) <> 0

let add t v =
  check t v;
  let w = v lsr 5 and bit = 1 lsl (v land 31) in
  if t.words.(w) land bit <> 0 then false
  else begin
    t.words.(w) <- t.words.(w) lor bit;
    t.card <- t.card + 1;
    true
  end

let remove t v =
  check t v;
  let w = v lsr 5 and bit = 1 lsl (v land 31) in
  if t.words.(w) land bit = 0 then false
  else begin
    t.words.(w) <- t.words.(w) land lnot bit;
    t.card <- t.card - 1;
    true
  end

let copy t = { n = t.n; words = Array.copy t.words; card = t.card }

(* SWAR popcount; inputs are 32-bit values held in native ints. *)
let popcount x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F in
  (x * 0x01010101) lsr 24 land 0xFF

let same_capacity a b = if a.n <> b.n then invalid_arg "Bitset: capacity mismatch"

let union_into ~dst ~src =
  same_capacity dst src;
  if dst.card = dst.n || src.card = 0 then 0
  else begin
  let dw = dst.words and sw = src.words in
  let added = ref 0 in
  for w = 0 to Array.length dw - 1 do
    let d = Array.unsafe_get dw w and s = Array.unsafe_get sw w in
    let fresh = s land lnot d in
    if fresh <> 0 then begin
      Array.unsafe_set dw w (d lor s);
      added := !added + popcount fresh
    end
  done;
  dst.card <- dst.card + !added;
  !added
  end

let iter_word_bits base bits f =
  let bits = ref bits in
  while !bits <> 0 do
    let low = !bits land (- !bits) in
    let idx = popcount (low - 1) in
    f (base + idx);
    bits := !bits lxor low
  done

let union_into_with ~dst ~src f =
  same_capacity dst src;
  if dst.card = dst.n || src.card = 0 then 0
  else begin
  let dw = dst.words and sw = src.words in
  let added = ref 0 in
  for w = 0 to Array.length dw - 1 do
    let d = Array.unsafe_get dw w and s = Array.unsafe_get sw w in
    let fresh = s land lnot d in
    if fresh <> 0 then begin
      Array.unsafe_set dw w (d lor s);
      added := !added + popcount fresh;
      iter_word_bits (w lsl 5) fresh f
    end
  done;
  dst.card <- dst.card + !added;
  !added
  end

let inter_cardinal a b =
  same_capacity a b;
  let total = ref 0 in
  for w = 0 to Array.length a.words - 1 do
    total := !total + popcount (a.words.(w) land b.words.(w))
  done;
  !total

let equal a b = a.n = b.n && a.card = b.card && a.words = b.words

let subset a b =
  same_capacity a b;
  let ok = ref true in
  let w = ref 0 in
  let nw = Array.length a.words in
  while !ok && !w < nw do
    if a.words.(!w) land lnot b.words.(!w) <> 0 then ok := false;
    incr w
  done;
  !ok

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    if t.words.(w) <> 0 then iter_word_bits (w lsl 5) t.words.(w) f
  done

let fold f init t =
  let acc = ref init in
  iter (fun v -> acc := f !acc v) t;
  !acc

let elements t = List.rev (fold (fun acc v -> v :: acc) [] t)

let to_array t =
  let out = Array.make t.card 0 in
  let i = ref 0 in
  iter
    (fun v ->
      out.(!i) <- v;
      incr i)
    t;
  out

let of_array n vs =
  let t = create n in
  Array.iter (fun v -> ignore (add t v)) vs;
  t

let is_full t = t.card = t.n

let choose_nth t k =
  if k < 0 || k >= t.card then invalid_arg "Bitset.choose_nth: rank out of range";
  let remaining = ref k in
  let result = ref (-1) in
  (try
     for w = 0 to Array.length t.words - 1 do
       let c = popcount t.words.(w) in
       if !remaining < c then begin
         iter_word_bits (w lsl 5) t.words.(w) (fun v ->
             if !remaining = 0 && !result < 0 then result := v
             else decr remaining);
         raise Exit
       end
       else remaining := !remaining - c
     done
   with Exit -> ());
  assert (!result >= 0);
  !result

let pp ppf t =
  Format.fprintf ppf "{";
  let first = ref true in
  iter
    (fun v ->
      if !first then first := false else Format.fprintf ppf ", ";
      Format.fprintf ppf "%d" v)
    t;
  Format.fprintf ppf "}"
