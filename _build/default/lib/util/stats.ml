type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let percentile xs p =
  if xs = [] then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (a.(lo) *. (1.0 -. frac)) +. (a.(hi) *. frac)
  end

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty"
  | _ ->
    let n = List.length xs in
    let m = mean xs in
    let var =
      if n <= 1 then 0.0
      else List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs /. float_of_int (n - 1)
    in
    {
      count = n;
      mean = m;
      stddev = sqrt var;
      min = List.fold_left Float.min infinity xs;
      max = List.fold_left Float.max neg_infinity xs;
      median = percentile xs 50.0;
    }

let summarize_ints xs = summarize (List.map float_of_int xs)

let geometric_mean xs =
  match xs with
  | [] -> invalid_arg "Stats.geometric_mean: empty"
  | _ ->
    let logs =
      List.map
        (fun x -> if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive value" else log x)
        xs
    in
    exp (mean logs)

let log2 x = log x /. log 2.0
let loglog2 x = log2 (log2 x)

let fit_ratio ~xs ~ys ~f =
  if List.length xs <> List.length ys || xs = [] then invalid_arg "Stats.fit_ratio: bad input";
  let fx = List.map f xs in
  let num = List.fold_left2 (fun acc fx y -> acc +. (fx *. y)) 0.0 fx ys in
  let den = List.fold_left (fun acc fx -> acc +. (fx *. fx)) 0.0 fx in
  if den = 0.0 then 0.0 else num /. den

let fit_residual ~xs ~ys ~f =
  let c = fit_ratio ~xs ~ys ~f in
  let fx = List.map f xs in
  let sq =
    List.fold_left2 (fun acc fx y -> acc +. (((c *. fx) -. y) ** 2.0)) 0.0 fx ys
  in
  let norm = List.fold_left (fun acc y -> acc +. (y *. y)) 0.0 ys in
  if norm = 0.0 then 0.0 else sqrt (sq /. norm)
