(** Deterministic pseudo-random number generation.

    Implements the xoshiro256★★ generator seeded through splitmix64. All
    randomness in the reproduction flows through this module so that a
    simulation run is a pure function of its integer seed, independent of
    the OCaml standard library's [Random] implementation (which changes
    between compiler releases). *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator whose stream is entirely determined
    by [seed]. Any integer (including negative values) is a valid seed. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator from [t],
    advancing [t]. Used to give every simulated node its own stream so
    that per-node behaviour does not depend on scheduling order. *)

val substream : seed:int -> index:int -> t
(** [substream ~seed ~index] deterministically derives the [index]-th
    substream of master seed [seed] without constructing intermediate
    generators. [substream ~seed ~index:i] is stable across runs. *)

val bits64 : t -> int64
(** Next raw 64-bit output word. *)

val int : t -> int -> int
(** [int t bound] returns a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] returns a uniform float in [\[0, bound)]. *)

val bool : t -> bool
(** Uniform boolean. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform random permutation of [0 .. n-1]. *)

val sample_distinct : t -> n:int -> k:int -> avoid:int -> int array
(** [sample_distinct t ~n ~k ~avoid] draws [k] distinct values uniformly
    from [0 .. n-1] excluding [avoid] (pass a value outside the range to
    exclude nothing). Requires [k] ≤ number of eligible values.
    @raise Invalid_argument if the request is unsatisfiable. *)
