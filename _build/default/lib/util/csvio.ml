let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let row_to_string cells = String.concat "," (List.map escape cells)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

let ensure_dir = mkdir_p

let with_channel path flags f =
  mkdir_p (Filename.dirname path);
  let oc = open_out_gen flags 0o644 path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let write ~path ~header ~rows =
  with_channel path [ Open_wronly; Open_creat; Open_trunc ] (fun oc ->
      output_string oc (row_to_string header);
      output_char oc '\n';
      List.iter
        (fun row ->
          output_string oc (row_to_string row);
          output_char oc '\n')
        rows)

let append_rows ~path ~rows =
  with_channel path [ Open_wronly; Open_creat; Open_append ] (fun oc ->
      List.iter
        (fun row ->
          output_string oc (row_to_string row);
          output_char oc '\n')
        rows)
