type align = Left | Right

type row = Cells of string list | Separator

type t = { headers : string list; aligns : align list; mutable rows : row list }

let create ~columns =
  { headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: row width differs from header";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row ->
            match row with
            | Separator -> acc
            | Cells cells -> max acc (String.length (List.nth cells i)))
          (String.length h) rows)
      t.headers
  in
  let buf = Buffer.create 256 in
  let emit_row cells =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad (List.nth t.aligns i) (List.nth widths i) c))
      cells;
    Buffer.add_string buf " |\n"
  in
  let emit_rule () =
    Buffer.add_string buf "|";
    List.iteri
      (fun i w ->
        ignore i;
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_string buf "|")
      widths;
    Buffer.add_string buf "\n"
  in
  emit_row t.headers;
  emit_rule ();
  List.iter (function Cells cells -> emit_row cells | Separator -> emit_rule ()) rows;
  Buffer.contents buf

let print t = print_string (render t)

let cell_int = string_of_int

let cell_float ?(decimals = 1) x =
  if Float.is_integer x && Float.abs x < 1e15 && decimals = 0 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.*f" decimals x

let cell_mean_std (s : Stats.summary) = Printf.sprintf "%.1f ± %.1f" s.Stats.mean s.Stats.stddev
