(** ASCII line/scatter plots for the paper's "figures".

    The harness has no graphics stack available offline, so figures are
    rendered as fixed-size character grids: good enough to eyeball the
    shape of a curve (flat, logarithmic, quadratic) which is what the
    reproduction's shape-claims are about. The underlying data is always
    also emitted as CSV (see {!Csvio}). *)

type series = { label : string; points : (float * float) list }

val render :
  ?width:int ->
  ?height:int ->
  ?logx:bool ->
  ?logy:bool ->
  title:string ->
  xlabel:string ->
  ylabel:string ->
  series list ->
  string
(** Render one or more series on a shared grid. Each series is drawn with
    its own glyph and listed in a legend beneath the plot. Log-scaled axes
    drop non-positive points. An empty series list (or series with no
    plottable points) renders a placeholder message. *)
