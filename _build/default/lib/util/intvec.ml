type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 8) () = { data = Array.make (max capacity 1) 0; len = 0 }
let length t = t.len

let check t i = if i < 0 || i >= t.len then invalid_arg "Intvec: index out of bounds"

let get t i =
  check t i;
  t.data.(i)

let set t i v =
  check t i;
  t.data.(i) <- v

let grow t =
  let cap = Array.length t.data in
  let data = Array.make (2 * cap) 0 in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t v =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- v;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Intvec.pop: empty";
  t.len <- t.len - 1;
  t.data.(t.len)

let clear t = t.len <- 0
let is_empty t = t.len = 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f init t =
  let acc = ref init in
  iter (fun v -> acc := f !acc v) t;
  !acc

let to_array t = Array.sub t.data 0 t.len

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.len then invalid_arg "Intvec.sub: invalid slice";
  Array.sub t.data pos len

let of_array a = { data = (if Array.length a = 0 then Array.make 1 0 else Array.copy a); len = Array.length a }

let last t =
  if t.len = 0 then invalid_arg "Intvec.last: empty";
  t.data.(t.len - 1)
