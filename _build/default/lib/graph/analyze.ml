open Repro_util

(* Symmetrised adjacency in CSR form, rebuilt per analysis call; analysis
   runs once per experiment row so this is not a hot path. *)
let undirected_csr t =
  let n = Topology.n t in
  let deg = Array.make n 0 in
  let edges = Topology.edges t in
  List.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let offsets = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    offsets.(u + 1) <- offsets.(u) + deg.(u)
  done;
  let adj = Array.make offsets.(n) 0 in
  let cursor = Array.copy offsets in
  List.iter
    (fun (u, v) ->
      adj.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1;
      adj.(cursor.(v)) <- u;
      cursor.(v) <- cursor.(v) + 1)
    edges;
  (offsets, adj)

let bfs_csr n (offsets, adj) source =
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(source) <- 0;
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    for i = offsets.(u) to offsets.(u + 1) - 1 do
      let v = adj.(i) in
      if dist.(v) < 0 then begin
        dist.(v) <- dist.(u) + 1;
        Queue.add v queue
      end
    done
  done;
  dist

let undirected_bfs t ~source =
  let n = Topology.n t in
  if source < 0 || source >= n then invalid_arg "Analyze.undirected_bfs: source out of range";
  bfs_csr n (undirected_csr t) source

let weak_component_count t =
  let n = Topology.n t in
  let uf = Unionfind.create n in
  List.iter (fun (u, v) -> ignore (Unionfind.union uf u v)) (Topology.edges t);
  Unionfind.count uf

let is_weakly_connected t = Topology.n t <= 1 || weak_component_count t = 1

let eccentricity dist =
  Array.fold_left
    (fun acc d -> if d < 0 then raise Exit else max acc d)
    0 dist

let weak_diameter_exact t =
  let n = Topology.n t in
  if n <= 1 then 0
  else begin
    let csr = undirected_csr t in
    try
      let best = ref 0 in
      for s = 0 to n - 1 do
        best := max !best (eccentricity (bfs_csr n csr s))
      done;
      !best
    with Exit -> -1
  end

let weak_diameter_estimate ~rng ?(sweeps = 4) t =
  let n = Topology.n t in
  if n <= 1 then 0
  else begin
    let csr = undirected_csr t in
    try
      let best = ref 0 in
      for _ = 1 to sweeps do
        (* double sweep: BFS from a random source, then from the farthest
           node found — exact on trees, a strong lower bound elsewhere. *)
        let d1 = bfs_csr n csr (Rng.int rng n) in
        let far = ref 0 in
        Array.iteri (fun v d -> if d < 0 then raise Exit else if d > d1.(!far) then far := v) d1;
        best := max !best (eccentricity (bfs_csr n csr !far))
      done;
      !best
    with Exit -> -1
  end

let degree_stats t =
  let n = Topology.n t in
  if n = 0 then invalid_arg "Analyze.degree_stats: empty graph";
  Stats.summarize_ints (List.init n (Topology.out_degree t))
