lib/graph/topology.ml: Array Format List
