lib/graph/topology.mli: Format
