lib/graph/generate.mli: Repro_util Rng Topology
