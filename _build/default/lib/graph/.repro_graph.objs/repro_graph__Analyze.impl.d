lib/graph/analyze.ml: Array List Queue Repro_util Rng Stats Topology Unionfind
