lib/graph/unionfind.ml: Array Hashtbl List
