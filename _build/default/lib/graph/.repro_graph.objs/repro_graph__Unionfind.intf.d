lib/graph/unionfind.mli:
