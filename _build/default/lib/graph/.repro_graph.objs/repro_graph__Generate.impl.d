lib/graph/generate.ml: Array Float Hashtbl List Printf Repro_util Rng Stats String Topology Unionfind
