lib/graph/analyze.mli: Repro_util Rng Stats Topology
