(** Disjoint-set forest with union-by-rank and path compression.

    Used to check weak connectivity of generated knowledge graphs and to
    stitch random graphs into a single weakly-connected component. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative. @raise Invalid_argument if out of range. *)

val union : t -> int -> int -> bool
(** Merge the two sets; returns [true] iff they were previously distinct. *)

val same : t -> int -> int -> bool
val count : t -> int
(** Number of disjoint sets remaining. *)

val components : t -> int list list
(** The partition, each component's members in increasing order. *)
