type t = { parent : int array; rank : int array; mutable count : int }

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0; count = n }

let check t v = if v < 0 || v >= Array.length t.parent then invalid_arg "Unionfind: out of range"

let rec find t v =
  check t v;
  let p = t.parent.(v) in
  if p = v then v
  else begin
    let root = find t p in
    t.parent.(v) <- root;
    root
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then false
  else begin
    let ra, rb = if t.rank.(ra) < t.rank.(rb) then (rb, ra) else (ra, rb) in
    t.parent.(rb) <- ra;
    if t.rank.(ra) = t.rank.(rb) then t.rank.(ra) <- t.rank.(ra) + 1;
    t.count <- t.count - 1;
    true
  end

let same t a b = find t a = find t b
let count t = t.count

let components t =
  let n = Array.length t.parent in
  let byroot = Hashtbl.create 16 in
  for v = n - 1 downto 0 do
    let r = find t v in
    let existing = try Hashtbl.find byroot r with Not_found -> [] in
    Hashtbl.replace byroot r (v :: existing)
  done;
  Hashtbl.fold (fun _ members acc -> members :: acc) byroot []
  |> List.sort (fun a b -> compare (List.hd a) (List.hd b))
