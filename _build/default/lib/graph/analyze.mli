(** Structural analysis of knowledge graphs.

    Discovery lower bounds are governed by the *undirected* (weak)
    structure of the initial knowledge graph — knowledge can flow against
    edge direction because pushed messages always carry the sender's own
    identifier. These helpers validate generator output and annotate
    experiment rows with the diameter term of the paper's
    O(log D + log log n) bound. *)

open Repro_util

val is_weakly_connected : Topology.t -> bool

val weak_component_count : Topology.t -> int

val undirected_bfs : Topology.t -> source:int -> int array
(** Distances in the symmetrised graph; unreachable nodes get [-1]. *)

val weak_diameter_exact : Topology.t -> int
(** Exact diameter of the symmetrised graph (all-sources BFS — use only
    for small [n]). Returns [-1] when disconnected, [0] for n ≤ 1. *)

val weak_diameter_estimate : rng:Rng.t -> ?sweeps:int -> Topology.t -> int
(** Lower-bound estimate via repeated double-sweep BFS from random
    sources; exact on trees and within a small factor in practice.
    Returns [-1] when disconnected. *)

val degree_stats : Topology.t -> Stats.summary
(** Summary of out-degrees. @raise Invalid_argument on the empty graph. *)
