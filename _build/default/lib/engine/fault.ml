module Imap = Map.Make (Int)

type t = { loss : float; crashes : int Imap.t; joins : int Imap.t }

let none = { loss = 0.0; crashes = Imap.empty; joins = Imap.empty }

let drop_probability t = t.loss

let with_loss t ~p =
  if p < 0.0 || p > 1.0 then invalid_arg "Fault.with_loss: probability out of range";
  { t with loss = p }

let with_crash t ~node ~round =
  if round < 1 then invalid_arg "Fault.with_crash: rounds are 1-based";
  if node < 0 then invalid_arg "Fault.with_crash: negative node";
  { t with crashes = Imap.add node round t.crashes }

let with_crashes t pairs =
  List.fold_left (fun t (node, round) -> with_crash t ~node ~round) t pairs

let crash_round t ~node = Imap.find_opt node t.crashes

let crashed_nodes t = Imap.bindings t.crashes

let with_join t ~node ~round =
  if round < 1 then invalid_arg "Fault.with_join: rounds are 1-based";
  if node < 0 then invalid_arg "Fault.with_join: negative node";
  { t with joins = Imap.add node round t.joins }

let with_joins t pairs =
  List.fold_left (fun t (node, round) -> with_join t ~node ~round) t pairs

let join_round t ~node = Option.value ~default:1 (Imap.find_opt node t.joins)

let joining_nodes t = Imap.bindings t.joins

let pp ppf t =
  Format.fprintf ppf "fault(loss=%g, crashes=%d, joins=%d)" t.loss (Imap.cardinal t.crashes)
    (Imap.cardinal t.joins)
