lib/engine/metrics.ml: Format Intvec List Repro_util
