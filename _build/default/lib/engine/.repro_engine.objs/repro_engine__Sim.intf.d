lib/engine/sim.mli: Fault Metrics
