lib/engine/async_sim.ml: Array Fault List Metrics Repro_util Rng Sim
