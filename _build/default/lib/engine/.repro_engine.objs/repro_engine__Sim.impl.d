lib/engine/sim.ml: Array Fault List Metrics Repro_util Rng
