lib/engine/fault.mli: Format
