lib/engine/fault.ml: Format Int List Map Option
