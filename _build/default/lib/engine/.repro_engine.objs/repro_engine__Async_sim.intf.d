lib/engine/async_sim.mli: Fault Metrics Sim
