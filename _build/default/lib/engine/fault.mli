(** Fault models for the synchronous simulator.

    Three orthogonal dynamics classes are supported:
    - {b message loss}: every message is independently dropped with a
      fixed probability (drawn from the engine's deterministic RNG);
    - {b crash-stop failures}: a node scheduled to crash at round [r]
      executes rounds [1 .. r-1] normally and is silent from round [r] on
      (it neither sends nor receives; in-flight messages to it are lost);
    - {b late joins} (churn): a node scheduled to join at round [r] is
      inactive — sends nothing, receives nothing — before [r], and runs
      normally from round [r] on. Messages addressed to an unjoined node
      are dropped, exactly like messages to a crashed one. *)

type t

val none : t
(** The fault-free model. *)

val drop_probability : t -> float

val with_loss : t -> p:float -> t
(** Independent per-message drop probability.
    @raise Invalid_argument unless [0 <= p <= 1]. *)

val with_crash : t -> node:int -> round:int -> t
(** Schedule [node] to crash at the start of [round] (1-based). Later
    schedules for the same node overwrite earlier ones.
    @raise Invalid_argument if [round < 1] or [node < 0]. *)

val with_crashes : t -> (int * int) list -> t
(** Fold of {!with_crash} over [(node, round)] pairs. *)

val crash_round : t -> node:int -> int option
(** The round at which [node] crashes, if any. *)

val crashed_nodes : t -> (int * int) list
(** All scheduled crashes as [(node, round)], sorted by node. *)

val with_join : t -> node:int -> round:int -> t
(** Schedule [node] to join (become active) at the start of [round]
    (1-based; a join at round 1 is the default behaviour). Later
    schedules for the same node overwrite earlier ones.
    @raise Invalid_argument if [round < 1] or [node < 0]. *)

val with_joins : t -> (int * int) list -> t
(** Fold of {!with_join} over [(node, round)] pairs. *)

val join_round : t -> node:int -> int
(** The round at which [node] activates (1 when unscheduled). *)

val joining_nodes : t -> (int * int) list
(** All scheduled late joins as [(node, round)], sorted by node. *)

val pp : Format.formatter -> t -> unit
