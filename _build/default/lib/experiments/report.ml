open Repro_util

type t = { results_dir : string; buf : Buffer.t }

let create ~results_dir = { results_dir; buf = Buffer.create 4096 }

let results_dir t = t.results_dir

let emit t s =
  print_string s;
  flush stdout;
  Buffer.add_string t.buf s

let section t ~id ~title =
  let line = Printf.sprintf "\n## %s — %s\n\n" id title in
  emit t line

let csv t ~name ~header ~rows =
  let path = Filename.concat t.results_dir (name ^ ".csv") in
  Csvio.write ~path ~header ~rows;
  emit t (Printf.sprintf "(data: %s)\n" path)

let captured t = Buffer.contents t.buf
