lib/experiments/sweepcell.mli: Algorithm Fault Generate Repro_discovery Repro_engine Repro_graph Repro_util Run Stats Topology
