lib/experiments/exp_async.ml: Algorithm Generate Hm_gossip List Name_dropper Printf Rand_gossip Report Repro_discovery Repro_graph Repro_util Run_async Stats Sweepcell Table
