lib/experiments/report.ml: Buffer Csvio Filename Printf Repro_util
