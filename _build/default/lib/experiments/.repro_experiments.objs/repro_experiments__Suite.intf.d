lib/experiments/suite.mli: Report
