lib/experiments/suite.ml: Exp_ablation Exp_async Exp_churn Exp_dynamics Exp_faults Exp_scaling Exp_termination Exp_topology Exp_wire Filename List Printf Report Repro_util String
