lib/experiments/sweepcell.ml: Algorithm Array Fault Float Generate List Printf Repro_discovery Repro_engine Repro_graph Repro_util Rng Run Stats Table
