lib/experiments/report.mli:
