lib/experiments/exp_ablation.ml: Algorithm Generate Hm_gossip List Min_pointer Printf Registry Report Repro_discovery Repro_graph Repro_util Sweepcell Table
