(** The experiment suite: every table and figure of EXPERIMENTS.md.

    Each entry regenerates one deliverable; [run] executes a selection
    and persists the combined report plus per-experiment CSVs under the
    results directory. *)

type entry = {
  id : string;  (** stable identifier: "T1" … "T7", "F1" … "F4" *)
  title : string;
  run : Report.t -> quick:bool -> unit;
}

val all : entry list

val ids : unit -> string list

val run :
  ?only:string list ->
  ?quick:bool ->
  results_dir:string ->
  unit ->
  (unit, string) result
(** Run the selected experiments (default: all) in suite order. [quick]
    shrinks sizes and seed counts for smoke-testing. Returns [Error] for
    an unknown id. The combined report is written to
    [results_dir/report.md]. *)
