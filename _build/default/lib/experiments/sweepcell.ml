open Repro_util
open Repro_graph
open Repro_engine
open Repro_discovery

type t = {
  algo : string;
  family : Generate.family;
  n : int;
  attempts : int;
  completions : int;
  rounds : Stats.summary option;
  messages : Stats.summary option;
  pointers : Stats.summary option;
  bytes : Stats.summary option;
  peak_round_messages : Stats.summary option;
}

(* Must stay in sync with discovery_cli so `discovery run --seed s`
   reproduces an experiment cell bit-for-bit. *)
let topology_of ~family ~n ~seed =
  let rng = Rng.substream ~seed ~index:0x70b0 in
  Generate.build family ~rng ~n

let crash_fault ~seed ~n ~count =
  if count <= 0 then Fault.none
  else begin
    let rng = Rng.substream ~seed ~index:0xdead in
    let victims = Rng.sample_distinct rng ~n ~k:(min count n) ~avoid:(-1) in
    Array.fold_left
      (fun f node -> Fault.with_crash f ~node ~round:(1 + Rng.int rng 5))
      Fault.none victims
  end

let run ~algo ~family ~n ~seeds ?max_rounds ?(fault = fun _ -> Fault.none)
    ?(completion = Run.Strong) () =
  let results =
    List.map
      (fun seed ->
        let topology = topology_of ~family ~n ~seed in
        Run.exec ~seed ~fault:(fault seed) ~completion ?max_rounds algo topology)
      seeds
  in
  let completed = List.filter (fun r -> r.Run.completed) results in
  let summarize f = match completed with [] -> None | _ -> Some (Stats.summarize_ints (List.map f completed)) in
  {
    algo = algo.Algorithm.name;
    family;
    n;
    attempts = List.length results;
    completions = List.length completed;
    rounds = summarize (fun r -> r.Run.rounds);
    messages = summarize (fun r -> r.Run.messages);
    pointers = summarize (fun r -> r.Run.pointers);
    bytes = summarize (fun r -> r.Run.bytes);
    peak_round_messages = summarize (fun r -> r.Run.max_round_messages);
  }

let approx_int x =
  let abs = Float.abs x in
  if abs >= 1e9 then Printf.sprintf "%.2fG" (x /. 1e9)
  else if abs >= 1e6 then Printf.sprintf "%.1fM" (x /. 1e6)
  else if abs >= 1e4 then Printf.sprintf "%.0fk" (x /. 1e3)
  else if abs >= 1e3 then Printf.sprintf "%.1fk" (x /. 1e3)
  else Printf.sprintf "%.0f" x

let with_dnf t s =
  if t.completions = t.attempts then s
  else Printf.sprintf "%s (%d/%d DNF)" s (t.attempts - t.completions) t.attempts

let rounds_cell t =
  match t.rounds with
  | None -> "DNF"
  | Some s ->
    with_dnf t
      (if s.Stats.stddev < 0.05 then Printf.sprintf "%.1f" s.Stats.mean else Table.cell_mean_std s)

let count_cell field t =
  match field t with None -> "DNF" | Some s -> with_dnf t (approx_int s.Stats.mean)

let messages_cell = count_cell (fun t -> t.messages)
let pointers_cell = count_cell (fun t -> t.pointers)
let bytes_cell = count_cell (fun t -> t.bytes)
