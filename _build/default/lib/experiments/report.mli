(** Output context shared by every experiment.

    Experiment text (tables, figures, fit summaries) is written to stdout
    and simultaneously captured so the suite can persist the full report;
    raw data goes to CSV files under the results directory. *)

type t

val create : results_dir:string -> t

val results_dir : t -> string

val emit : t -> string -> unit
(** Write a chunk of report text (caller includes its own newlines). *)

val section : t -> id:string -> title:string -> unit
(** Emit a standard section header. *)

val csv : t -> name:string -> header:string list -> rows:string list list -> unit
(** Persist a data file as [results_dir/name.csv] and note it in the
    report. *)

val captured : t -> string
(** Everything emitted so far. *)
