open Repro_util
open Repro_graph

let test_connectivity () =
  let connected = Topology.create ~n:4 ~edges:[ (0, 1); (2, 1); (3, 2) ] in
  Alcotest.(check bool) "weakly connected (directions ignored)" true
    (Analyze.is_weakly_connected connected);
  let split = Topology.create ~n:4 ~edges:[ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "disconnected" false (Analyze.is_weakly_connected split);
  Alcotest.(check int) "components" 2 (Analyze.weak_component_count split);
  Alcotest.(check bool) "singleton graph" true
    (Analyze.is_weakly_connected (Topology.create ~n:1 ~edges:[]));
  Alcotest.(check bool) "empty graph" true
    (Analyze.is_weakly_connected (Topology.create ~n:0 ~edges:[]))

let test_bfs () =
  let t = Generate.path 5 in
  Alcotest.(check (array int)) "path distances" [| 2; 1; 0; 1; 2 |]
    (Analyze.undirected_bfs t ~source:2);
  let split = Topology.create ~n:3 ~edges:[ (0, 1) ] in
  Alcotest.(check (array int)) "unreachable is -1" [| 0; 1; -1 |]
    (Analyze.undirected_bfs split ~source:0)

let test_bfs_ignores_direction () =
  let t = Generate.directed_path 4 in
  Alcotest.(check (array int)) "bfs from sink walks backwards" [| 3; 2; 1; 0 |]
    (Analyze.undirected_bfs t ~source:3)

let test_diameter_exact () =
  Alcotest.(check int) "path" 9 (Analyze.weak_diameter_exact (Generate.path 10));
  Alcotest.(check int) "cycle" 5 (Analyze.weak_diameter_exact (Generate.cycle 10));
  Alcotest.(check int) "star" 2 (Analyze.weak_diameter_exact (Generate.star 10));
  Alcotest.(check int) "complete" 1 (Analyze.weak_diameter_exact (Generate.complete 5));
  Alcotest.(check int) "singleton" 0 (Analyze.weak_diameter_exact (Generate.path 1));
  Alcotest.(check int) "disconnected" (-1)
    (Analyze.weak_diameter_exact (Topology.create ~n:3 ~edges:[ (0, 1) ]))

let test_diameter_estimate () =
  let rng = Rng.create ~seed:3 in
  (* double sweep is exact on trees and paths *)
  Alcotest.(check int) "path estimate exact" 99
    (Analyze.weak_diameter_estimate ~rng (Generate.path 100));
  Alcotest.(check int) "tree estimate exact"
    (Analyze.weak_diameter_exact (Generate.binary_tree 63))
    (Analyze.weak_diameter_estimate ~rng (Generate.binary_tree 63));
  Alcotest.(check int) "disconnected" (-1)
    (Analyze.weak_diameter_estimate ~rng (Topology.create ~n:3 ~edges:[ (0, 1) ]))

let test_estimate_is_lower_bound () =
  let rng = Rng.create ~seed:5 in
  for seed = 1 to 5 do
    let t = Generate.k_out ~rng:(Rng.create ~seed) ~n:80 ~k:2 in
    let exact = Analyze.weak_diameter_exact t in
    let est = Analyze.weak_diameter_estimate ~rng t in
    if est > exact then Alcotest.failf "estimate %d exceeds exact %d" est exact;
    if est <= 0 then Alcotest.failf "estimate not positive"
  done

let test_degree_stats () =
  let t = Generate.star 5 in
  let s = Analyze.degree_stats t in
  Alcotest.(check int) "count" 5 s.Stats.count;
  Alcotest.(check bool) "max is center" true (s.Stats.max = 4.0);
  Alcotest.(check bool) "min is leaf" true (s.Stats.min = 1.0);
  Alcotest.check_raises "empty graph" (Invalid_argument "Analyze.degree_stats: empty graph")
    (fun () -> ignore (Analyze.degree_stats (Topology.create ~n:0 ~edges:[])))

let prop_bfs_triangle_inequality =
  QCheck2.Test.make ~name:"bfs distances satisfy edge relaxation" ~count:100
    QCheck2.Gen.(
      let* n = int_range 2 40 in
      let* seed = int_range 0 500 in
      return (n, seed))
    (fun (n, seed) ->
      let t = Generate.k_out ~rng:(Rng.create ~seed) ~n ~k:(min 2 (n - 1)) in
      let d = Analyze.undirected_bfs t ~source:0 in
      List.for_all
        (fun (u, v) -> d.(u) >= 0 && d.(v) >= 0 && abs (d.(u) - d.(v)) <= 1)
        (Topology.edges t))

let () =
  Alcotest.run "analyze"
    [
      ( "unit",
        [
          Alcotest.test_case "connectivity" `Quick test_connectivity;
          Alcotest.test_case "bfs" `Quick test_bfs;
          Alcotest.test_case "bfs ignores direction" `Quick test_bfs_ignores_direction;
          Alcotest.test_case "diameter exact" `Quick test_diameter_exact;
          Alcotest.test_case "diameter estimate" `Quick test_diameter_estimate;
          Alcotest.test_case "estimate lower-bounds exact" `Quick test_estimate_is_lower_bound;
          Alcotest.test_case "degree stats" `Quick test_degree_stats;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_bfs_triangle_inequality ]);
    ]
