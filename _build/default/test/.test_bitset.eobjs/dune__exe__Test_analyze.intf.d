test/test_analyze.mli:
