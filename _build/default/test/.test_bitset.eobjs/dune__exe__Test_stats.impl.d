test/test_stats.ml: Alcotest Float Fun List QCheck2 QCheck_alcotest Repro_util Stats
