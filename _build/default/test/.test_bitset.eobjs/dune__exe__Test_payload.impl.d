test/test_payload.ml: Alcotest Array Bitset Format Knowledge Payload Repro_discovery Repro_util
