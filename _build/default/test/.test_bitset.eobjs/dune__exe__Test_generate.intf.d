test/test_generate.mli:
