test/test_bitset.ml: Alcotest Array Bitset List QCheck2 QCheck_alcotest Repro_util
