test/test_payload.mli:
