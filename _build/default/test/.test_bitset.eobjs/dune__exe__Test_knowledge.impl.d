test/test_knowledge.ml: Alcotest Array Bitset Knowledge List QCheck2 QCheck_alcotest Repro_discovery Repro_util Rng
