test/test_unionfind.mli:
