test/test_unionfind.ml: Alcotest Array List QCheck2 QCheck_alcotest Repro_graph Unionfind
