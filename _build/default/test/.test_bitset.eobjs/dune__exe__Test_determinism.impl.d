test/test_determinism.ml: Alcotest Algorithm Fault Generate Hm_gossip List Min_pointer Name_dropper Rand_gossip Registry Repro_discovery Repro_engine Repro_experiments Repro_graph Run
