test/test_intvec.mli:
