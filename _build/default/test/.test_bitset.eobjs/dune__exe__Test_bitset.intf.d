test/test_bitset.mli:
