test/test_async.mli:
