test/test_registry.ml: Alcotest Algorithm List Registry Repro_discovery Repro_experiments Repro_graph Run
