test/test_rng.ml: Alcotest Array Float List QCheck2 QCheck_alcotest Repro_util Rng
