test/test_intvec.ml: Alcotest Array Intvec List QCheck2 QCheck_alcotest Repro_util
