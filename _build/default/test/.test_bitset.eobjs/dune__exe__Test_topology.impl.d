test/test_topology.ml: Alcotest Array List QCheck2 QCheck_alcotest Repro_graph Topology
