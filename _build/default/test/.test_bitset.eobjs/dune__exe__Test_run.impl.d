test/test_run.ml: Alcotest Algorithm Array Generate Hm_gossip List Min_pointer Name_dropper Repro_discovery Repro_engine Repro_experiments Repro_graph Repro_util Run
