test/test_termination.mli:
