test/test_registry.mli:
