test/test_reporting.mli:
