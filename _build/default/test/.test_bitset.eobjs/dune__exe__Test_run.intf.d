test/test_run.mli:
