test/test_generate.ml: Alcotest Analyze Array Generate List QCheck2 QCheck_alcotest Repro_graph Repro_util Rng Stats Topology
