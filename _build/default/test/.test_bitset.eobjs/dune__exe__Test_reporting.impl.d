test/test_reporting.ml: Alcotest Csvio Filename List Plot Repro_util Stats String Table
