test/test_exhaustive.ml: Alcotest Algorithm Analyze Array Flooding Fun Hm_gossip List Min_pointer Name_dropper Printf Rand_gossip Repro_discovery Repro_graph Run String Swamping Topology
