test/test_wire.ml: Alcotest Array Bitset Bytes Format Fun List Payload Printf QCheck2 QCheck_alcotest Repro_discovery Repro_util Wire
