test/test_determinism.mli:
