test/test_engine.ml: Alcotest Array Fault Float Format List Metrics Repro_engine Sim
