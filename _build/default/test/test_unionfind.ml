open Repro_graph

let test_singletons () =
  let uf = Unionfind.create 5 in
  Alcotest.(check int) "count" 5 (Unionfind.count uf);
  for i = 0 to 4 do
    Alcotest.(check int) "own root" i (Unionfind.find uf i)
  done

let test_union () =
  let uf = Unionfind.create 6 in
  Alcotest.(check bool) "merge" true (Unionfind.union uf 0 1);
  Alcotest.(check bool) "redundant merge" false (Unionfind.union uf 1 0);
  Alcotest.(check bool) "same" true (Unionfind.same uf 0 1);
  Alcotest.(check bool) "not same" false (Unionfind.same uf 0 2);
  ignore (Unionfind.union uf 2 3);
  ignore (Unionfind.union uf 1 3);
  Alcotest.(check bool) "transitively same" true (Unionfind.same uf 0 2);
  Alcotest.(check int) "count" 3 (Unionfind.count uf)

let test_components () =
  let uf = Unionfind.create 6 in
  ignore (Unionfind.union uf 0 2);
  ignore (Unionfind.union uf 2 4);
  ignore (Unionfind.union uf 1 5);
  Alcotest.(check (list (list int))) "partition" [ [ 0; 2; 4 ]; [ 1; 5 ]; [ 3 ] ]
    (Unionfind.components uf)

let test_bounds () =
  let uf = Unionfind.create 3 in
  Alcotest.check_raises "out of range" (Invalid_argument "Unionfind: out of range") (fun () ->
      ignore (Unionfind.find uf 3))

let prop_equivalence_relation =
  QCheck2.Test.make ~name:"union-find agrees with naive component labelling" ~count:200
    QCheck2.Gen.(
      let* n = int_range 1 40 in
      let* edges = list_size (int_range 0 60) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) in
      return (n, edges))
    (fun (n, edges) ->
      let uf = Unionfind.create n in
      List.iter (fun (a, b) -> ignore (Unionfind.union uf a b)) edges;
      (* naive labelling by repeated relaxation *)
      let label = Array.init n (fun i -> i) in
      let changed = ref true in
      while !changed do
        changed := false;
        List.iter
          (fun (a, b) ->
            let m = min label.(a) label.(b) in
            if label.(a) <> m || label.(b) <> m then begin
              label.(a) <- m;
              label.(b) <- m;
              changed := true
            end)
          edges
      done;
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if Unionfind.same uf a b <> (label.(a) = label.(b)) then ok := false
        done
      done;
      !ok)

let () =
  Alcotest.run "unionfind"
    [
      ( "unit",
        [
          Alcotest.test_case "singletons" `Quick test_singletons;
          Alcotest.test_case "union" `Quick test_union;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "bounds" `Quick test_bounds;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_equivalence_relation ]);
    ]
