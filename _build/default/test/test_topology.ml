open Repro_graph

let test_create_dedups () =
  let t = Topology.create ~n:4 ~edges:[ (0, 1); (0, 1); (1, 1); (2, 3) ] in
  Alcotest.(check int) "edge count (dupes and self-loops dropped)" 2 (Topology.edge_count t);
  Alcotest.(check (list (pair int int))) "edges" [ (0, 1); (2, 3) ] (Topology.edges t)

let test_neighbors_sorted () =
  let t = Topology.create ~n:5 ~edges:[ (0, 4); (0, 1); (0, 3) ] in
  Alcotest.(check (array int)) "sorted" [| 1; 3; 4 |] (Topology.out_neighbors t 0);
  Alcotest.(check int) "degree" 3 (Topology.out_degree t 0);
  Alcotest.(check (array int)) "empty" [||] (Topology.out_neighbors t 2)

let test_neighbors_fresh () =
  let t = Topology.create ~n:3 ~edges:[ (0, 1) ] in
  let a = Topology.out_neighbors t 0 in
  a.(0) <- 99;
  Alcotest.(check (array int)) "fresh array each call" [| 1 |] (Topology.out_neighbors t 0)

let test_mem_edge () =
  let t = Topology.create ~n:6 ~edges:[ (0, 1); (0, 3); (0, 5); (2, 4) ] in
  Alcotest.(check bool) "present" true (Topology.mem_edge t 0 3);
  Alcotest.(check bool) "absent" false (Topology.mem_edge t 0 2);
  Alcotest.(check bool) "reverse absent" false (Topology.mem_edge t 1 0);
  Alcotest.(check bool) "out of range is false" false (Topology.mem_edge t 9 0)

let test_validation () =
  Alcotest.check_raises "endpoint range"
    (Invalid_argument "Topology.create: edge endpoint out of range") (fun () ->
      ignore (Topology.create ~n:2 ~edges:[ (0, 2) ]));
  Alcotest.check_raises "negative n" (Invalid_argument "Topology.create: negative size")
    (fun () -> ignore (Topology.create ~n:(-1) ~edges:[]))

let test_symmetrize () =
  let t = Topology.create ~n:3 ~edges:[ (0, 1); (1, 2) ] in
  let s = Topology.symmetrize t in
  Alcotest.(check (list (pair int int))) "symmetric edges"
    [ (0, 1); (1, 0); (1, 2); (2, 1) ]
    (Topology.edges s)

let test_map_nodes () =
  let t = Topology.create ~n:3 ~edges:[ (0, 1); (1, 2) ] in
  let m = Topology.map_nodes t [| 2; 0; 1 |] in
  Alcotest.(check (list (pair int int))) "relabelled" [ (0, 1); (2, 0) ] (Topology.edges m);
  Alcotest.check_raises "not a permutation"
    (Invalid_argument "Topology.map_nodes: not a permutation") (fun () ->
      ignore (Topology.map_nodes t [| 0; 0; 1 |]))

let prop_csr_roundtrip =
  QCheck2.Test.make ~name:"edges roundtrip through CSR" ~count:200
    QCheck2.Gen.(
      let* n = int_range 1 30 in
      let* edges = list_size (int_range 0 80) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) in
      return (n, edges))
    (fun (n, edges) ->
      let expected = List.sort_uniq compare (List.filter (fun (u, v) -> u <> v) edges) in
      let t = Topology.create ~n ~edges in
      Topology.edges t = expected
      && Topology.edge_count t = List.length expected
      && List.for_all (fun (u, v) -> Topology.mem_edge t u v) expected)

let () =
  Alcotest.run "topology"
    [
      ( "unit",
        [
          Alcotest.test_case "create dedups" `Quick test_create_dedups;
          Alcotest.test_case "neighbors sorted" `Quick test_neighbors_sorted;
          Alcotest.test_case "neighbors fresh" `Quick test_neighbors_fresh;
          Alcotest.test_case "mem_edge" `Quick test_mem_edge;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "symmetrize" `Quick test_symmetrize;
          Alcotest.test_case "map_nodes" `Quick test_map_nodes;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_csr_roundtrip ]);
    ]
