(* Tests for the deterministic PRNG: reproducibility, bounds, and
   statistical sanity. *)

open Repro_util

let test_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 16 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_substream_stability () =
  let a = Rng.substream ~seed:7 ~index:3 in
  let b = Rng.substream ~seed:7 ~index:3 in
  let c = Rng.substream ~seed:7 ~index:4 in
  Alcotest.(check int64) "same substream" (Rng.bits64 a) (Rng.bits64 b);
  Alcotest.(check bool) "different substream" true (Rng.bits64 a <> Rng.bits64 c)

let test_split_independence () =
  let parent = Rng.create ~seed:9 in
  let child1 = Rng.split parent in
  let child2 = Rng.split parent in
  Alcotest.(check bool) "split children differ" true (Rng.bits64 child1 <> Rng.bits64 child2)

let test_int_bounds () =
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 10_000 do
    let bound = 1 + Rng.int rng 1000 in
    let v = Rng.int rng bound in
    if v < 0 || v >= bound then Alcotest.failf "Rng.int %d produced %d" bound v
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_int_covers_small_range () =
  let rng = Rng.create ~seed:11 in
  let seen = Array.make 4 false in
  for _ = 1 to 1000 do
    seen.(Rng.int rng 4) <- true
  done;
  Alcotest.(check bool) "all 4 values hit" true (Array.for_all (fun b -> b) seen)

let test_float_bounds () =
  let rng = Rng.create ~seed:13 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "Rng.float out of range: %f" v
  done

let test_float_mean () =
  let rng = Rng.create ~seed:17 in
  let sum = ref 0.0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    sum := !sum +. Rng.float rng 1.0
  done;
  let mean = !sum /. float_of_int trials in
  if Float.abs (mean -. 0.5) > 0.02 then Alcotest.failf "uniform mean drifted: %f" mean

let test_bernoulli () =
  let rng = Rng.create ~seed:19 in
  Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng ~p:0.0);
  Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng ~p:1.0);
  let hits = ref 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    if Rng.bernoulli rng ~p:0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int trials in
  if Float.abs (rate -. 0.3) > 0.02 then Alcotest.failf "bernoulli rate drifted: %f" rate

let test_permutation () =
  let rng = Rng.create ~seed:23 in
  let p = Rng.permutation rng 100 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 100 (fun i -> i)) sorted

let test_pick () =
  let rng = Rng.create ~seed:29 in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let v = Rng.pick rng a in
    if not (Array.mem v a) then Alcotest.failf "pick produced foreign value %d" v
  done;
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick rng [||]))

let test_shuffle_preserves_multiset () =
  let rng = Rng.create ~seed:31 in
  let a = Array.init 50 (fun i -> i mod 7) in
  let b = Array.copy a in
  Rng.shuffle_in_place rng b;
  Array.sort compare a;
  Array.sort compare b;
  Alcotest.(check (array int)) "same multiset" a b

let prop_sample_distinct =
  QCheck2.Test.make ~name:"sample_distinct: distinct, in range, avoids" ~count:300
    QCheck2.Gen.(
      let* n = int_range 2 100 in
      let* avoid = int_range (-1) (n - 1) in
      let eligible = if avoid >= 0 then n - 1 else n in
      let* k = int_range 0 eligible in
      let* seed = int_range 0 10_000 in
      return (n, k, avoid, seed))
    (fun (n, k, avoid, seed) ->
      let rng = Rng.create ~seed in
      let out = Rng.sample_distinct rng ~n ~k ~avoid in
      let l = Array.to_list out in
      Array.length out = k
      && List.for_all (fun v -> v >= 0 && v < n && v <> avoid) l
      && List.length (List.sort_uniq compare l) = k)

let test_sample_distinct_unsatisfiable () =
  let rng = Rng.create ~seed:1 in
  Alcotest.check_raises "too many"
    (Invalid_argument "Rng.sample_distinct: unsatisfiable request") (fun () ->
      ignore (Rng.sample_distinct rng ~n:3 ~k:3 ~avoid:1))

let () =
  Alcotest.run "rng"
    [
      ( "unit",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "substream stability" `Quick test_substream_stability;
          Alcotest.test_case "split independence" `Quick test_split_independence;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int covers range" `Quick test_int_covers_small_range;
          Alcotest.test_case "float bounds" `Quick test_float_bounds;
          Alcotest.test_case "float mean" `Quick test_float_mean;
          Alcotest.test_case "bernoulli" `Quick test_bernoulli;
          Alcotest.test_case "permutation" `Quick test_permutation;
          Alcotest.test_case "pick" `Quick test_pick;
          Alcotest.test_case "shuffle multiset" `Quick test_shuffle_preserves_multiset;
          Alcotest.test_case "sample_distinct unsatisfiable" `Quick
            test_sample_distinct_unsatisfiable;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_sample_distinct ]);
    ]
