  $ ../../bin/discovery_cli.exe list
  $ ../../bin/discovery_cli.exe run --algo hm --topology kout:3 -n 256 --seed 1
  $ ../../bin/discovery_cli.exe topo --topology star -n 16
  $ ../../bin/discovery_cli.exe run --algo warp -n 16 2>&1 | head -2
  $ ../../bin/experiments.exe --list
  $ ../../bin/experiments.exe --only T99 2>&1
