(* Tests for the reporting helpers: ASCII tables, plots, CSV files. *)

open Repro_util

let test_table_render () =
  let t = Table.create ~columns:[ ("name", Table.Left); ("value", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let rendered = Table.render t in
  let lines = String.split_on_char '\n' rendered |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "line count" 4 (List.length lines);
  Alcotest.(check string) "header" "| name  | value |" (List.nth lines 0);
  Alcotest.(check string) "separator" "|-------|-------|" (List.nth lines 1);
  Alcotest.(check string) "left align" "| alpha |     1 |" (List.nth lines 2);
  Alcotest.(check string) "right align" "| b     |    22 |" (List.nth lines 3)

let test_table_width_check () =
  let t = Table.create ~columns:[ ("a", Table.Left) ] in
  Alcotest.check_raises "row width" (Invalid_argument "Table.add_row: row width differs from header")
    (fun () -> Table.add_row t [ "x"; "y" ])

let test_table_cells () =
  Alcotest.(check string) "int" "42" (Table.cell_int 42);
  Alcotest.(check string) "float" "3.1" (Table.cell_float 3.14);
  Alcotest.(check string) "float decimals" "3.142" (Table.cell_float ~decimals:3 3.1416);
  let s = Stats.summarize [ 1.0; 3.0 ] in
  Alcotest.(check string) "mean±std" "2.0 ± 1.4" (Table.cell_mean_std s)

let test_plot_contains_series () =
  let rendered =
    Plot.render ~title:"t" ~xlabel:"x" ~ylabel:"y"
      [
        { Plot.label = "one"; points = [ (1.0, 1.0); (2.0, 4.0); (3.0, 9.0) ] };
        { Plot.label = "two"; points = [ (1.0, 2.0); (2.0, 2.0) ] };
      ]
  in
  Alcotest.(check bool) "title present" true (String.length rendered > 0);
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  Alcotest.(check bool) "legend one" true (contains rendered "[*] one");
  Alcotest.(check bool) "legend two" true (contains rendered "[o] two");
  Alcotest.(check bool) "glyphs plotted" true (contains rendered "*")

let test_plot_empty () =
  let rendered = Plot.render ~title:"empty" ~xlabel:"x" ~ylabel:"y" [] in
  Alcotest.(check bool) "placeholder" true
    (String.length rendered > 0
    && String.sub rendered 0 5 = "empty")

let test_plot_log_drops_nonpositive () =
  (* must not raise on zero/negative points under log axes *)
  let rendered =
    Plot.render ~logx:true ~logy:true ~title:"log" ~xlabel:"x" ~ylabel:"y"
      [ { Plot.label = "s"; points = [ (0.0, 1.0); (-1.0, 2.0); (2.0, 8.0); (4.0, 16.0) ] } ]
  in
  Alcotest.(check bool) "rendered" true (String.length rendered > 0)

let test_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Csvio.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csvio.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csvio.escape "a\"b");
  Alcotest.(check string) "newline" "\"a\nb\"" (Csvio.escape "a\nb");
  Alcotest.(check string) "row" "a,\"b,c\",d" (Csvio.row_to_string [ "a"; "b,c"; "d" ])

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_csv_write_and_append () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "repro_csv_test" in
  let path = Filename.concat dir "out.csv" in
  Csvio.write ~path ~header:[ "a"; "b" ] ~rows:[ [ "1"; "2" ] ];
  Csvio.append_rows ~path ~rows:[ [ "3"; "4" ] ];
  Alcotest.(check string) "contents" "a,b\n1,2\n3,4\n" (read_file path);
  Csvio.write ~path ~header:[ "x" ] ~rows:[];
  Alcotest.(check string) "truncated rewrite" "x\n" (read_file path)

let () =
  Alcotest.run "reporting"
    [
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "width check" `Quick test_table_width_check;
          Alcotest.test_case "cell formats" `Quick test_table_cells;
        ] );
      ( "plot",
        [
          Alcotest.test_case "series and legend" `Quick test_plot_contains_series;
          Alcotest.test_case "empty" `Quick test_plot_empty;
          Alcotest.test_case "log axes drop nonpositive" `Quick test_plot_log_drops_nonpositive;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escaping" `Quick test_csv_escape;
          Alcotest.test_case "write/append" `Quick test_csv_write_and_append;
        ] );
    ]
