open Repro_util

let feq ?(eps = 1e-9) name a b =
  if Float.abs (a -. b) > eps then Alcotest.failf "%s: expected %f, got %f" name a b

let test_summary () =
  let s = Stats.summarize [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  Alcotest.(check int) "count" 8 s.Stats.count;
  feq "mean" 5.0 s.Stats.mean;
  feq "min" 2.0 s.Stats.min;
  feq "max" 9.0 s.Stats.max;
  feq ~eps:1e-6 "stddev (sample)" 2.13809 s.Stats.stddev;
  feq "median" 4.5 s.Stats.median

let test_summary_singleton () =
  let s = Stats.summarize [ 3.0 ] in
  feq "mean" 3.0 s.Stats.mean;
  feq "stddev" 0.0 s.Stats.stddev;
  feq "median" 3.0 s.Stats.median

let test_empty_raises () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty") (fun () ->
      ignore (Stats.summarize []));
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty") (fun () ->
      ignore (Stats.mean []))

let test_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0 ] in
  feq "p0" 1.0 (Stats.percentile xs 0.0);
  feq "p100" 4.0 (Stats.percentile xs 100.0);
  feq "p50" 2.5 (Stats.percentile xs 50.0);
  feq "p25" 1.75 (Stats.percentile xs 25.0);
  Alcotest.check_raises "p out of range" (Invalid_argument "Stats.percentile: p out of range")
    (fun () -> ignore (Stats.percentile xs 101.0))

let test_geometric_mean () =
  feq "gm" 4.0 (Stats.geometric_mean [ 2.0; 8.0 ]);
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Stats.geometric_mean: non-positive value") (fun () ->
      ignore (Stats.geometric_mean [ 1.0; 0.0 ]))

let test_log_helpers () =
  feq "log2 8" 3.0 (Stats.log2 8.0);
  feq "loglog2 256" 3.0 (Stats.loglog2 256.0)

let test_fit_exact () =
  (* ys = 3 * log2 xs exactly: residual 0, ratio 3 *)
  let xs = [ 2.0; 4.0; 8.0; 16.0; 1024.0 ] in
  let ys = List.map (fun x -> 3.0 *. Stats.log2 x) xs in
  feq "ratio" 3.0 (Stats.fit_ratio ~xs ~ys ~f:Stats.log2);
  feq "residual" 0.0 (Stats.fit_residual ~xs ~ys ~f:Stats.log2)

let test_fit_discriminates () =
  let xs = [ 128.0; 256.0; 512.0; 1024.0; 4096.0; 16384.0 ] in
  let ys = List.map (fun x -> 2.0 *. Stats.log2 x) xs in
  let r_log = Stats.fit_residual ~xs ~ys ~f:Stats.log2 in
  let r_sq = Stats.fit_residual ~xs ~ys ~f:(fun x -> Stats.log2 x ** 2.0) in
  Alcotest.(check bool) "log fits log data better than log^2" true (r_log < r_sq)

let test_fit_validation () =
  Alcotest.check_raises "mismatched" (Invalid_argument "Stats.fit_ratio: bad input") (fun () ->
      ignore (Stats.fit_ratio ~xs:[ 1.0 ] ~ys:[] ~f:Fun.id))

let prop_summary_bounds =
  QCheck2.Test.make ~name:"min <= median <= max and mean within [min,max]" ~count:300
    QCheck2.Gen.(list_size (int_range 1 50) (float_bound_inclusive 1000.0))
    (fun xs ->
      let s = Stats.summarize xs in
      s.Stats.min <= s.Stats.median +. 1e-9
      && s.Stats.median <= s.Stats.max +. 1e-9
      && s.Stats.min <= s.Stats.mean +. 1e-9
      && s.Stats.mean <= s.Stats.max +. 1e-9)

let prop_percentile_monotone =
  QCheck2.Test.make ~name:"percentile is monotone in p" ~count:200
    QCheck2.Gen.(
      let* xs = list_size (int_range 1 30) (float_bound_inclusive 100.0) in
      let* p1 = float_bound_inclusive 100.0 in
      let* p2 = float_bound_inclusive 100.0 in
      return (xs, Float.min p1 p2, Float.max p1 p2))
    (fun (xs, lo, hi) -> Stats.percentile xs lo <= Stats.percentile xs hi +. 1e-9)

let () =
  Alcotest.run "stats"
    [
      ( "unit",
        [
          Alcotest.test_case "summary" `Quick test_summary;
          Alcotest.test_case "singleton" `Quick test_summary_singleton;
          Alcotest.test_case "empty raises" `Quick test_empty_raises;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "log helpers" `Quick test_log_helpers;
          Alcotest.test_case "exact fit" `Quick test_fit_exact;
          Alcotest.test_case "fit discriminates shapes" `Quick test_fit_discriminates;
          Alcotest.test_case "fit validation" `Quick test_fit_validation;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_summary_bounds; prop_percentile_monotone ] );
    ]
