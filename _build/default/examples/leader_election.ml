(* Leader election as a by-product of resource discovery.

   Run with:  dune exec examples/leader_election.exe

   Discovery in its weak form — one node knows everyone and everyone
   knows it — is exactly leader election with a complete membership view
   at the leader, the primitive a cluster manager needs before it can
   assign work. hm's cluster structure elects the minimum random rank.

   This example drives the engine directly (rather than through
   Run.exec) to show the lower-level API: instantiating per-node
   algorithm state, wiring handlers, and inspecting node states after
   the run. It then verifies that all nodes agree on the elected leader
   and that the leader's membership view is complete. *)

open Repro_util
open Repro_graph
open Repro_engine
open Repro_discovery

let n = 512
let seed = 3

let () =
  let rng = Rng.substream ~seed ~index:1000 in
  let topology = Generate.clustered ~rng ~n ~clusters:8 ~intra_k:3 in
  Printf.printf "electing a coordinator among %d machines (8 datacenter pods)\n\n" n;

  (* per-node state: the label permutation is the shared random ranks *)
  let labels = Rng.permutation (Rng.substream ~seed ~index:0) n in
  let instances =
    Array.init n (fun node ->
        let ctx =
          {
            Algorithm.n;
            node;
            neighbors = Topology.out_neighbors topology node;
            labels;
            rng = Rng.substream ~seed ~index:(node + 1);
            params = Params.default;
          }
        in
        Hm_gossip.algorithm.Algorithm.make ctx)
  in
  let handlers =
    {
      Sim.round_begin = (fun ~node ~round ~send -> instances.(node).Algorithm.round ~round ~send);
      deliver = (fun ~node ~src ~round:_ p -> instances.(node).Algorithm.receive ~src p);
    }
  in
  (* stop as soon as every node agrees on a complete-knowledge leader *)
  let leader_of v = Knowledge.min_known instances.(v).Algorithm.knowledge in
  let stop ~round:_ ~alive:_ =
    let candidate = leader_of 0 in
    Knowledge.is_complete instances.(candidate).Algorithm.knowledge
    && Array.for_all (fun i -> Knowledge.min_known i.Algorithm.knowledge = candidate)
         (Array.sub instances 0 n)
  in
  let outcome =
    Sim.run ~n ~config:Sim.default_config ~handlers ~measure:Payload.measure ~stop ()
  in

  let leader = leader_of 0 in
  Printf.printf "elected leader: node %d (rank %d) after %d rounds\n" leader labels.(leader)
    outcome.Sim.rounds;
  Printf.printf "leader's membership view: %d/%d machines\n"
    (Knowledge.cardinal instances.(leader).Algorithm.knowledge)
    n;
  let agreed =
    Array.for_all (fun i -> Knowledge.min_known i.Algorithm.knowledge = leader) instances
  in
  Printf.printf "all %d machines agree on the leader: %b\n" n agreed;
  Printf.printf "messages: %d (%.1f per machine)\n"
    (Metrics.messages_sent outcome.Sim.metrics)
    (float_of_int (Metrics.messages_sent outcome.Sim.metrics) /. float_of_int n);

  (* sanity: the elected node is the global minimum rank *)
  let true_min = ref 0 in
  Array.iteri (fun v l -> if l < labels.(!true_min) then true_min := v) labels;
  assert (leader = !true_min);
  print_endline "(the elected node is indeed the global minimum rank)"
