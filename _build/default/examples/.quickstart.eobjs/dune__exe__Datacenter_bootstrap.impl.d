examples/datacenter_bootstrap.ml: Fault Generate Hm_gossip List Min_pointer Name_dropper Printf Repro_discovery Repro_engine Repro_graph Repro_util Rng Run
