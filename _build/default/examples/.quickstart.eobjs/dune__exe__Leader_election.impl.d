examples/leader_election.ml: Algorithm Array Generate Hm_gossip Knowledge Metrics Params Payload Printf Repro_discovery Repro_engine Repro_graph Repro_util Rng Sim Topology
