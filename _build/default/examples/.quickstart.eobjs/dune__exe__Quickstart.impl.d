examples/quickstart.ml: Analyze Array Generate Hm_gossip Name_dropper Printf Repro_discovery Repro_graph Repro_util Rng Run Topology
