examples/datacenter_bootstrap.mli:
