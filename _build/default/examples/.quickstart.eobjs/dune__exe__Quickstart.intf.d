examples/quickstart.mli:
