examples/fleet_census.mli:
