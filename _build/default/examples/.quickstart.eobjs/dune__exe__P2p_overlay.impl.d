examples/p2p_overlay.ml: Array Fault Generate Hm_gossip List Name_dropper Printf Rand_gossip Repro_discovery Repro_engine Repro_graph Repro_util Rng Run String
