examples/p2p_overlay.mli:
