examples/fleet_census.ml: Array Generate Hm_gossip List Metrics Printf Repro_discovery Repro_engine Repro_graph Repro_util Rng Run Sim
