examples/leader_election.mli:
